"""Vectorized UE-cohort signaling engine.

The per-UE emulation (:class:`repro.sim.emulation.NeighborhoodEmulation`)
schedules one simulator event per session arrival, release, and pass
sweep -- O(users x events) work that tops out around 10^2 UEs.  The
paper's load points, though, are population-scale: a serving satellite
carries 2K-30K users and the constellation carries millions.  This
engine gets there by the standard large-population move: group the
``n_ues`` users into ``n_cohorts`` statistically identical cohorts and
sample each cohort's *event counts* directly from the arrival
processes with numpy, then apply per-message costs to whole cohorts at
once.  A 1M-UE load point is O(cohorts), not O(users).

The event processes mirror ``Solution.procedure_rates_per_user``
exactly (sessions every ~106.9 s, handovers/mobility registrations per
coverage pass, initial registrations at power-cycle scale), so the
engine's measured per-UE rates cross-validate against both the
analytic arithmetic and the per-UE emulation.  Runs are seeded and
bit-reproducible for a fixed (seed, n_cohorts) pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..constants import RRC_INACTIVITY_TIMEOUT_S, SESSION_INTERARRIVAL_S
from ..fiveg.messages import ProcedureKind
from ..obs.metrics import MetricsRegistry
from ..orbits.snapshot import snapshots_for
from ..topology.batch_routing import BatchGeoRouter
from .memo import cached_dwell_time_s
from .parallel import seed_for

#: Default cohort count: fine enough that Poisson sampling noise per
#: cohort stays realistic, coarse enough that 1M UEs stay trivial.
DEFAULT_COHORTS = 256


@dataclass(frozen=True)
class OfferedLoadProbe:
    """Routability of one load point's offered session traffic.

    A sampled subset of the sessions the population offers over the
    horizon, each routed at its own departure epoch through the batch
    plane's epoch sweep.  ``mean_delay_ms`` is ``None`` when nothing
    was delivered (it serialises as JSON ``null``, never ``Infinity``).
    """

    duration_s: float
    epochs: int
    offered_sessions: int
    packets: int
    routed: int
    delivered: int
    mean_delay_ms: Optional[float]
    mean_hops: float
    table_builds: int

    @property
    def delivery_fraction(self) -> float:
        """Delivered fraction of the *routed* packets (0.0 if none)."""
        return self.delivered / self.routed if self.routed else 0.0


@dataclass
class CohortStats:
    """Counters of one cohort-engine run (per-UE emulation's shape)."""

    duration_s: float = 0.0
    ue_count: int = 0
    n_cohorts: int = 0
    sessions_attempted: int = 0
    sessions_established: int = 0
    releases: int = 0
    handovers: int = 0
    mobility_registrations: int = 0
    initial_registrations: int = 0
    signaling_messages: int = 0
    satellite_messages: int = 0
    crossing_messages: int = 0
    events_by_procedure: Dict[str, int] = field(default_factory=dict)

    @property
    def events_total(self) -> int:
        """Procedure events the population generated."""
        return sum(self.events_by_procedure.values())

    @property
    def session_rate_per_ue(self) -> float:
        """Measured establishments per UE-second."""
        if not self.duration_s or not self.ue_count:
            return 0.0
        return self.sessions_established / (self.duration_s
                                            * self.ue_count)

    @property
    def events_per_ue_s(self) -> float:
        if not self.duration_s or not self.ue_count:
            return 0.0
        return self.events_total / (self.duration_s * self.ue_count)


class UECohortEngine:
    """One population-scale signaling load point, O(cohorts).

    ``solution`` supplies the procedure mix and per-procedure message
    flows (default: SpaceCore); ``dwell_s`` defaults to the
    constellation's mean pass duration via the shard-local cache.
    """

    def __init__(self, constellation=None, n_ues: int = 10_000,
                 solution=None, seed: int = 0,
                 n_cohorts: int = DEFAULT_COHORTS,
                 session_interval_s: float = SESSION_INTERARRIVAL_S,
                 rrc_timeout_s: float = RRC_INACTIVITY_TIMEOUT_S,
                 dwell_s: Optional[float] = None,
                 metrics: Optional[MetricsRegistry] = None):
        if n_ues < 1:
            raise ValueError("need at least one UE")
        if n_cohorts < 1:
            raise ValueError("need at least one cohort")
        if session_interval_s <= 0:
            raise ValueError("session interval must be positive")
        if solution is None:
            from ..baselines.solutions import spacecore
            solution = spacecore()
        if dwell_s is None:
            if constellation is None:
                raise ValueError(
                    "need a constellation or an explicit dwell_s")
            dwell_s = cached_dwell_time_s(constellation)
        self.constellation = constellation
        self.solution = solution
        self.n_ues = n_ues
        self.n_cohorts = min(n_cohorts, n_ues)
        self.seed = seed
        self.session_interval_s = session_interval_s
        self.rrc_timeout_s = rrc_timeout_s
        self.dwell_s = dwell_s
        #: Optional observability sink mirroring :class:`CohortStats`
        #: as mergeable ``cohort.*`` series.
        self.metrics = metrics
        # Cohort sizes: n_ues split as evenly as integers allow.
        base, extra = divmod(n_ues, self.n_cohorts)
        sizes = np.full(self.n_cohorts, base, dtype=np.int64)
        sizes[:extra] += 1
        self._sizes = sizes
        # Offered-load probe plumbing, built on first use: the batch
        # router (relay hop budget) and its private metrics registry
        # so ``routing.table_builds`` deltas stay attributable to the
        # probe regardless of what the caller's registry collects.
        self._probe_router: Optional[BatchGeoRouter] = None
        self._probe_metrics: Optional[MetricsRegistry] = None

    # -- arrival sampling --------------------------------------------------------

    def _rates_per_user(self) -> Dict[ProcedureKind, float]:
        """The same per-UE event rates the storm arithmetic uses."""
        rates = dict(self.solution.procedure_rates_per_user(self.dwell_s))
        # The emulation's session clock is configurable; rescale the
        # session row so cohort and per-UE runs agree for any interval.
        rates[ProcedureKind.SESSION_ESTABLISHMENT] = \
            1.0 / self.session_interval_s
        return rates

    def sample_events(self, duration_s: float
                      ) -> Dict[ProcedureKind, np.ndarray]:
        """Per-cohort event counts for every procedure kind.

        One Poisson draw per (cohort, procedure): the superposition of
        each cohort member's arrival process.  Seeds derive from the
        engine seed and the procedure name, so adding a procedure kind
        never perturbs the draws of the others.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        counts: Dict[ProcedureKind, np.ndarray] = {}
        for kind, rate in sorted(self._rates_per_user().items(),
                                 key=lambda kv: kv[0].value):
            rng = np.random.default_rng(
                seed_for(self.seed, f"cohort:{kind.value}"))
            mean = self._sizes * (rate * duration_s)
            counts[kind] = rng.poisson(mean)
        return counts

    # -- batched cost application ------------------------------------------------

    def run(self, duration_s: float) -> CohortStats:
        """Sample the load point and apply message costs in batch."""
        events = self.sample_events(duration_s)
        stats = CohortStats(duration_s=duration_s, ue_count=self.n_ues,
                            n_cohorts=self.n_cohorts)
        totals: Dict[ProcedureKind, int] = {
            kind: int(per_cohort.sum())
            for kind, per_cohort in events.items()
        }
        for kind, total in totals.items():
            stats.events_by_procedure[kind.value] = total
            flow = self.solution.flow(kind)
            # Whole-cohort cost application: each of the ``total``
            # events contributes the flow's message counts -- three
            # multiplies per procedure kind, regardless of n_ues.
            stats.signaling_messages += total * len(flow)
            stats.satellite_messages += \
                total * self.solution.satellite_messages(flow)
            stats.crossing_messages += \
                total * self.solution.crossing_messages(flow)

        sessions = totals.get(ProcedureKind.SESSION_ESTABLISHMENT, 0)
        stats.sessions_attempted = sessions
        stats.sessions_established = sessions
        # Inactivity release follows every session that started early
        # enough to time out inside the horizon; thin binomially.
        live_fraction = max(0.0, 1.0 - self.rrc_timeout_s / duration_s)
        if sessions:
            rng = np.random.default_rng(seed_for(self.seed,
                                                 "cohort:releases"))
            stats.releases = int(rng.binomial(sessions, live_fraction))
        stats.handovers = totals.get(ProcedureKind.HANDOVER, 0)
        stats.mobility_registrations = \
            totals.get(ProcedureKind.MOBILITY_REGISTRATION, 0)
        stats.initial_registrations = \
            totals.get(ProcedureKind.INITIAL_REGISTRATION, 0)
        if self.metrics is not None:
            self._export_metrics(stats)
        return stats

    def _export_metrics(self, stats: CohortStats) -> None:
        """Mirror one run's counters into the registry, mergeable."""
        assert self.metrics is not None
        solution = self.solution.name
        self.metrics.counter("cohort.runs", solution=solution).inc()
        self.metrics.counter("cohort.ue_seconds", solution=solution).inc(
            stats.ue_count * stats.duration_s)
        for name, total in sorted(stats.events_by_procedure.items()):
            self.metrics.counter("cohort.events", solution=solution,
                                 procedure=name).inc(total)
        for kind, total in (
                ("signaling", stats.signaling_messages),
                ("satellite", stats.satellite_messages),
                ("crossing", stats.crossing_messages)):
            self.metrics.counter("cohort.messages", solution=solution,
                                 kind=kind).inc(total)
        self.metrics.counter("cohort.sessions_established",
                             solution=solution).inc(
                                 stats.sessions_established)
        self.metrics.counter("cohort.releases",
                             solution=solution).inc(stats.releases)

    # -- offered-load probe ------------------------------------------------------

    def _offered_router(self) -> BatchGeoRouter:
        """The probe's batch router (relay hop budget), built once."""
        if self._probe_router is None:
            from ..orbits.propagator import make_propagator
            from ..topology.grid import GridTopology
            from ..topology.routing import RELAY_MAX_HOPS
            if self.constellation is None:
                raise ValueError(
                    "offered-load probe needs a constellation")
            self._probe_metrics = MetricsRegistry()
            propagator = make_propagator(self.constellation, "ideal")
            self._probe_router = BatchGeoRouter(
                GridTopology(propagator, []), max_hops=RELAY_MAX_HOPS,
                metrics=self._probe_metrics)
        return self._probe_router

    def probe_offered_load(self, duration_s: float, epochs: int = 12,
                           max_packets: int = 1024) -> OfferedLoadProbe:
        """Route a sample of the offered session load across the horizon.

        The load point says how much signaling the population *offers*;
        this probe asks whether the constellation can actually carry
        it: one Poisson draw of the horizon's session arrivals, a
        deterministic sample of at most ``max_packets`` of them, each
        assigned a departure epoch on the ``epochs``-point grid and a
        ground source/destination in the served latitude band, all
        routed in one :meth:`BatchGeoRouter.route_sweep` call.  Seeded
        from the engine seed, so a fixed ``(seed, epochs,
        max_packets)`` probe is bit-reproducible.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if epochs < 1:
            raise ValueError("need at least one epoch")
        router = self._offered_router()
        assert self.constellation is not None
        assert self._probe_metrics is not None
        rng = np.random.default_rng(
            seed_for(self.seed, "cohort:offered-load"))
        offered = int(rng.poisson(
            self.n_ues * duration_s / self.session_interval_s))
        packets = min(offered, max_packets)
        if packets == 0:
            return OfferedLoadProbe(
                duration_s=duration_s, epochs=epochs,
                offered_sessions=offered, packets=0, routed=0,
                delivered=0, mean_delay_ms=None, mean_hops=0.0,
                table_builds=0)
        ts_grid = [duration_s * i / epochs for i in range(epochs)]
        t_idx = rng.integers(0, epochs, packets)
        inclination = self.constellation.inclination_deg
        lat_band = math.radians(
            min(inclination, 180.0 - inclination)) - 0.02
        src_lats = rng.uniform(-lat_band, lat_band, packets)
        src_lons = rng.uniform(-math.pi, math.pi, packets)
        dst_lats = rng.uniform(-lat_band, lat_band, packets)
        dst_lons = rng.uniform(-math.pi, math.pi, packets)
        snaps = snapshots_for(router.topology.propagator, ts_grid)
        src_sats = np.fromiter(
            (snaps[int(k)].serving_satellite(float(lat), float(lon))
             for k, lat, lon in zip(t_idx, src_lats, src_lons)),
            dtype=np.int64, count=packets)
        covered = np.nonzero(src_sats >= 0)[0]
        builds_before = int(
            self._probe_metrics.counter_value("routing.table_builds"))
        ts = np.asarray(ts_grid, dtype=float)[t_idx]
        wave = router.route_sweep(src_sats[covered], dst_lats[covered],
                                  dst_lons[covered], ts[covered])
        builds = int(self._probe_metrics.counter_value(
            "routing.table_builds")) - builds_before
        delivered_mask = wave.delivered
        n_ok = int(delivered_mask.sum())
        probe = OfferedLoadProbe(
            duration_s=duration_s, epochs=epochs,
            offered_sessions=offered, packets=packets,
            routed=int(covered.size), delivered=n_ok,
            mean_delay_ms=(
                float(wave.delay_s[delivered_mask].mean()) * 1000.0
                if n_ok else None),
            mean_hops=(float(wave.hops[delivered_mask].mean())
                       if n_ok else 0.0),
            table_builds=builds)
        if self.metrics is not None:
            solution = self.solution.name
            self.metrics.counter("cohort.offered_probes",
                                 solution=solution).inc()
            self.metrics.counter("cohort.offered_packets",
                                 solution=solution).inc(probe.packets)
            self.metrics.counter("cohort.offered_delivered",
                                 solution=solution).inc(probe.delivered)
        return probe

    # -- cross-validation --------------------------------------------------------

    def predicted_session_rate_per_ue(self) -> float:
        """Analytic counterpart of ``CohortStats.session_rate_per_ue``."""
        return 1.0 / self.session_interval_s

    def predicted_events_per_ue_s(self) -> float:
        """Analytic counterpart of ``CohortStats.events_per_ue_s``."""
        return sum(self._rates_per_user().values())
