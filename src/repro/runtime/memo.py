"""Shard-local memoization of expensive pure inputs.

A sharded sweep hands each worker a stream of design points that share
most of their expensive inputs: the multi-source Dijkstra behind
``mean_hops_to_ground``, the coverage-transient dwell time, the epoch
snapshot of a constellation.  All of those are pure functions of
hashable arguments, so each worker process keeps a private cache and
computes each distinct input once -- "shard-local" because the caches
live in module state, which every forked/spawned worker owns
separately (and the pre-fork parent's warm cache is inherited for
free on fork platforms).

Caches register themselves so :func:`clear_shard_caches` can reset the
process to a cold state -- benchmarks use that to time the real
compute, and tests use it to prove cached and uncached paths agree.
"""

from __future__ import annotations

import functools
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    TypeVar,
    cast,
)

F = TypeVar("F", bound=Callable)

#: Every cache created by :func:`shard_memoized`, for global clearing.
_SHARD_CACHES: List[Dict] = []

#: Every function wrapped by :func:`shard_memoized`, for introspection.
_MEMOIZED_FUNCS: List[Callable] = []

#: Decorator names whose presence marks a function as memoized.  The
#: static analyzer (``repro.analysis.rules_cachekeys``) imports this
#: as its single source of truth, so adding a memoizer here extends
#: the cache-key soundness checks automatically.
MEMO_DECORATOR_NAMES: Tuple[str, ...] = ("shard_memoized", "lru_cache",
                                         "cache")


def shard_memoized(make_key: Callable[..., Any]) -> Callable[[F], F]:
    """Memoize a pure function in a per-process dict.

    ``make_key`` maps the call arguments to a hashable cache key; it
    runs on every call, so keep it cheap.  The cache is exposed as
    ``fn.shard_cache`` for tests, and decorator metadata as
    ``fn.__repro_memo__`` for the static analyzer's self-test.
    """
    def decorate(fn: F) -> F:
        cache: Dict[Any, Any] = {}
        _SHARD_CACHES.append(cache)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            key = make_key(*args, **kwargs)
            try:
                return cache[key]
            except KeyError:
                value = fn(*args, **kwargs)
                cache[key] = value
                return value

        setattr(wrapper, "shard_cache", cache)
        setattr(wrapper, "__repro_memo__", {
            "decorator": "shard_memoized",
            "function": fn.__qualname__,
            "module": fn.__module__,
            "make_key": getattr(make_key, "__qualname__",
                                repr(make_key)),
        })
        _MEMOIZED_FUNCS.append(wrapper)
        return cast(F, wrapper)
    return decorate


def memo_metadata(fn: Callable) -> Optional[Dict[str, str]]:
    """The ``shard_memoized`` metadata of a wrapped function, or None."""
    return getattr(fn, "__repro_memo__", None)


def memoized_functions() -> Tuple[Callable, ...]:
    """Every ``shard_memoized``-wrapped function in this process."""
    return tuple(_MEMOIZED_FUNCS)


def clear_shard_caches() -> None:
    """Drop every shard-local cache in this process (incl. snapshots)."""
    for cache in _SHARD_CACHES:
        cache.clear()
    # The epoch-keyed constellation snapshot LRU is the third expensive
    # pure input; it predates this module but is shard-local in exactly
    # the same sense.
    from ..orbits.snapshot import clear_snapshot_cache
    clear_snapshot_cache()


def _dwell_key(constellation, min_elevation_deg=None):
    return (constellation, min_elevation_deg)


@shard_memoized(_dwell_key)
def cached_dwell_time_s(constellation,
                        min_elevation_deg: Optional[float] = None) -> float:
    """Shard-local :func:`repro.orbits.coverage.mean_dwell_time_s`."""
    from ..orbits.coverage import mean_dwell_time_s
    return mean_dwell_time_s(constellation, min_elevation_deg)
