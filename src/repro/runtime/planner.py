"""Cost-aware execution planning for the sharded runtime.

PR 3's ``run_sharded`` paid full pool startup per call and one pickled
task per shard, so small work units *lost* to serial (0.20x on the
80-point signaling sweep, 0.93x on the chaos Monte Carlo --
``BENCH_scaling.json`` before this module existed).  TEGRA's
disaggregated-core argument and Serverless5GC's cold-start-vs-warm-pool
tradeoff teach the same lesson: parallelism is fictional unless startup
and dispatch overhead are amortized across many invocations.  This
module is the policy half of that amortization; the mechanism half
(warm pools, batch dispatch, the shared-object registry) lives in
:mod:`.parallel`.

The planner answers one question per fan-out: *given ``n`` items, ``w``
requested workers, and an estimated per-item cost, is sharding worth
it -- and at what batch size?*  Inputs to the decision:

* **Calibration** -- measured once per process on the first pool:
  per-task dispatch overhead (submit + pickle + round-trip of a no-op)
  and pool startup time.  Until a pool exists, conservative defaults
  stand in.
* **Cost priors** -- an EMA of measured per-item cost keyed by the
  fan-out's label, learned from earlier serial or sharded runs in this
  process.  A sweep that ran serially once plans its sharded run
  without probing; a label never seen before pays a one-item in-process
  probe instead.
* **Break-even projection** -- serial cost ``est * n`` versus
  ``startup + n_tasks * overhead + est * n / effective_workers``,
  where effective workers are capped by the host's usable cores.  A
  grid below break-even routes straight to the in-process path: the
  sharded runtime must never lose to serial by more than timer noise.

Decisions change the execution *medium* only, never an artifact: the
bit-identical serial/sharded contract of
``tests/test_parallel_equivalence.py`` holds whatever the planner
picks.  Every decision is recorded in an in-process log and mirrored
into a dedicated :class:`~repro.obs.metrics.MetricsRegistry` (separate
from experiment registries, which must stay independent of the
execution medium) so planner behaviour ships with the benchmark
artifacts.
"""

from __future__ import annotations

import math
import os
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from ..obs.metrics import DEFAULT_COUNT_BUCKETS, MetricsRegistry, Snapshot

__all__ = [
    "PLANNER_ENV_VAR",
    "ExecutionPlan",
    "cost_prior",
    "forced_mode",
    "note_pool_recycled",
    "plan_execution",
    "planner_calibration",
    "planner_decisions",
    "planner_metrics_snapshot",
    "record_decision",
    "reset_planner",
    "trivial_plan",
    "update_cost_prior",
    "usable_cores",
]

#: Environment knob forcing the planner's hand: ``auto`` (default),
#: ``serial`` (never pool), or ``sharded`` (always pool when the
#: caller asked for >1 worker) -- the last is how the equivalence
#: tests guarantee the pool path actually executes.
PLANNER_ENV_VAR = "REPRO_PLANNER"

_FORCE_MODES = ("auto", "serial", "sharded")

#: Dispatch overhead assumed per pool task before calibration has run.
DEFAULT_TASK_OVERHEAD_S = 2e-3

#: Pool startup cost assumed before a pool has ever been created.
DEFAULT_POOL_STARTUP_S = 0.15

#: Every pool task should carry at least this much estimated work...
MIN_TASK_SPAN_S = 0.010

#: ...and at least this multiple of the measured per-task overhead,
#: whichever is larger -- the batching floor that keeps dispatch cost
#: a rounding error on the task it ships.
OVERHEAD_MULTIPLE = 10.0

#: Sharding must project at least this advantage over serial; below
#: it the projection is within noise of break-even and serial wins by
#: default (no pool to start, no pickling to pay).
PARALLEL_ADVANTAGE = 1.3

#: Without a cost estimate (forced sharded, label never measured),
#: split the grid into this many tasks per worker for load balance.
FORCED_TASKS_PER_WORKER = 4

#: Weight of the newest measurement in the per-label cost EMA.
PRIOR_EMA_ALPHA = 0.5


@dataclass(frozen=True)
class ExecutionPlan:
    """One fan-out decision: medium, batch size, and the math behind it."""

    mode: str                       # "serial" | "sharded"
    reason: str
    n_items: int
    workers: int
    chunk_size: int                 # items per pool task (sharded)
    n_tasks: int
    est_item_cost_s: Optional[float]
    overhead_per_task_s: float
    pool_startup_s: float
    serial_est_s: Optional[float]
    parallel_est_s: Optional[float]


# -- module state (per-process, like the shard memo caches) -----------------

_calibration: Dict[str, float] = {}
_cost_priors: Dict[str, Dict[str, Any]] = {}
_decisions: List[Dict[str, Any]] = []
_metrics = MetricsRegistry()


def usable_cores() -> int:
    """CPU cores this process may actually run on."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity support
        return os.cpu_count() or 1


def forced_mode() -> Optional[str]:
    """``REPRO_PLANNER`` as a force directive, or None for auto."""
    raw = os.environ.get(PLANNER_ENV_VAR, "").strip().lower()
    if not raw or raw == "auto":
        return None
    if raw not in _FORCE_MODES:
        raise ValueError(
            f"{PLANNER_ENV_VAR} must be one of {_FORCE_MODES}, got {raw!r}")
    return raw


# -- calibration ------------------------------------------------------------

def record_task_overhead(seconds: float) -> None:
    """Store the measured per-task dispatch overhead (once per process)."""
    _calibration["task_overhead_s"] = seconds


def record_pool_startup(seconds: float) -> None:
    """Store the most recent measured pool startup time."""
    _calibration["pool_startup_s"] = seconds


def is_calibrated() -> bool:
    """Whether dispatch overhead has been measured on a real pool."""
    return "task_overhead_s" in _calibration


def planner_calibration() -> Dict[str, float]:
    """A copy of the measured overhead/startup calibration."""
    return dict(_calibration)


# -- per-label cost priors --------------------------------------------------

def cost_prior(label: str) -> Optional[float]:
    """The learned per-item cost for a fan-out label, if any."""
    entry = _cost_priors.get(label)
    return None if entry is None else float(entry["cost_s"])


def update_cost_prior(label: str, per_item_s: float,
                      source: str = "serial") -> None:
    """Fold one measured per-item cost into the label's EMA."""
    if per_item_s < 0:
        return
    entry = _cost_priors.get(label)
    if entry is None:
        _cost_priors[label] = {"cost_s": per_item_s, "source": source,
                               "samples": 1}
        return
    entry["cost_s"] = (PRIOR_EMA_ALPHA * per_item_s
                       + (1.0 - PRIOR_EMA_ALPHA) * entry["cost_s"])
    entry["source"] = source
    entry["samples"] = int(entry["samples"]) + 1


def cost_priors() -> Dict[str, Dict[str, Any]]:
    """A copy of every learned per-label cost prior."""
    return {label: dict(entry) for label, entry in _cost_priors.items()}


# -- the decision -----------------------------------------------------------

def _chunk_for(est_item_cost_s: Optional[float], remaining: int,
               workers: int, overhead_s: float) -> int:
    """Batch size: enough work per task to drown dispatch overhead.

    Clamped so a single grid still spreads across every worker
    (``<= ceil(remaining / workers)``) and never exceeds the item
    count.
    """
    spread_cap = max(1, math.ceil(remaining / workers))
    if est_item_cost_s is None:
        # No estimate: balance-first heuristic.
        chunk = max(1, math.ceil(remaining
                                 / (workers * FORCED_TASKS_PER_WORKER)))
        return min(chunk, spread_cap, remaining)
    target_span = max(MIN_TASK_SPAN_S, OVERHEAD_MULTIPLE * overhead_s)
    if est_item_cost_s <= 0:
        chunk = remaining
    else:
        chunk = math.ceil(target_span / est_item_cost_s)
    return max(1, min(chunk, spread_cap, remaining))


def plan_execution(*, n_items: int, workers: int,
                   est_item_cost_s: Optional[float],
                   remaining: Optional[int] = None,
                   pool_is_warm: bool = False,
                   force: Optional[str] = None,
                   cores: Optional[int] = None) -> ExecutionPlan:
    """Decide serial vs batched-sharded for one fan-out.

    ``remaining`` is the item count still to execute (the caller may
    have already probed a few in-process); ``cores`` overrides the
    detected core count (tests exercise multi-core plans on one-core
    hosts).  ``force="sharded"`` skips the break-even comparison but
    still computes a batch size.
    """
    if n_items < 2:
        raise ValueError("planning needs at least two items")
    if workers < 2:
        raise ValueError("planning needs at least two workers")
    remaining = n_items if remaining is None else remaining
    if not 1 <= remaining <= n_items:
        raise ValueError(f"remaining must be in [1, {n_items}]")
    overhead = _calibration.get("task_overhead_s", DEFAULT_TASK_OVERHEAD_S)
    startup = (0.0 if pool_is_warm
               else _calibration.get("pool_startup_s",
                                     DEFAULT_POOL_STARTUP_S))
    chunk = _chunk_for(est_item_cost_s, remaining, workers, overhead)
    n_tasks = math.ceil(remaining / chunk)
    if force == "sharded":
        return ExecutionPlan(
            mode="sharded", reason="forced-sharded", n_items=n_items,
            workers=workers, chunk_size=chunk, n_tasks=n_tasks,
            est_item_cost_s=est_item_cost_s,
            overhead_per_task_s=overhead, pool_startup_s=startup,
            serial_est_s=None, parallel_est_s=None)
    if est_item_cost_s is None:
        raise ValueError("auto planning needs a cost estimate")
    effective = max(1, min(workers,
                           cores if cores is not None else usable_cores(),
                           n_tasks))
    serial_est = est_item_cost_s * remaining
    parallel_est = (startup + n_tasks * overhead
                    + serial_est / effective)
    if serial_est > PARALLEL_ADVANTAGE * parallel_est:
        mode, reason = "sharded", "parallel-wins"
    elif effective == 1:
        mode, reason = "serial", "single-core"
    else:
        mode, reason = "serial", "below-break-even"
    return ExecutionPlan(
        mode=mode, reason=reason, n_items=n_items, workers=workers,
        chunk_size=chunk, n_tasks=n_tasks,
        est_item_cost_s=est_item_cost_s, overhead_per_task_s=overhead,
        pool_startup_s=startup, serial_est_s=serial_est,
        parallel_est_s=parallel_est)


def trivial_plan(mode: str, reason: str, n_items: int,
                 workers: int) -> ExecutionPlan:
    """A decision that needed no cost model (forced, singleton, ...)."""
    return ExecutionPlan(
        mode=mode, reason=reason, n_items=n_items, workers=workers,
        chunk_size=n_items, n_tasks=1 if n_items else 0,
        est_item_cost_s=None,
        overhead_per_task_s=_calibration.get("task_overhead_s",
                                             DEFAULT_TASK_OVERHEAD_S),
        pool_startup_s=_calibration.get("pool_startup_s",
                                        DEFAULT_POOL_STARTUP_S),
        serial_est_s=None, parallel_est_s=None)


# -- decision log + metrics -------------------------------------------------

def record_decision(plan: ExecutionPlan, label: str) -> ExecutionPlan:
    """Append one decision to the log and mirror it into metrics."""
    entry = asdict(plan)
    entry["label"] = label
    _decisions.append(entry)
    _metrics.counter("planner.decisions", mode=plan.mode,
                     reason=plan.reason).inc()
    _metrics.counter("planner.items", mode=plan.mode).inc(plan.n_items)
    if plan.mode == "sharded":
        _metrics.counter("planner.tasks").inc(plan.n_tasks)
        _metrics.histogram("planner.chunk_size",
                           buckets=DEFAULT_COUNT_BUCKETS).observe(
                               plan.chunk_size)
    return plan


def note_probe(label: str) -> None:
    """Count one in-process cost probe (no prior existed for label)."""
    _metrics.counter("planner.probes").inc()


def note_pool_created() -> None:
    """Count one worker-pool creation (warm reuse does not increment)."""
    _metrics.counter("planner.pools_created").inc()


def note_pool_recycled(label: str) -> None:
    """Count one BrokenProcessPool recycle-and-retry.

    A worker death (OOM kill, signal) silently costs a full pool
    restart plus a recompute of the sharded region; this counter makes
    those incidents visible in ``BENCH_planner_log.json``.
    """
    _metrics.counter("planner.pool_recycles", label=label).inc()


def planner_decisions() -> List[Dict[str, Any]]:
    """The in-process decision log, oldest first (copies)."""
    return [dict(entry) for entry in _decisions]


def planner_metrics_snapshot() -> Snapshot:
    """The planner's own registry snapshot (mergeable like any other)."""
    return _metrics.snapshot()


def pools_created() -> int:
    """How many worker pools this process has created so far."""
    value = _metrics.counter_value("planner.pools_created")
    return int(value)


def reset_planner(*, calibration: bool = True, priors: bool = True,
                  decisions: bool = True) -> None:
    """Test/benchmark hook: return planner state to process-start."""
    global _metrics
    if calibration:
        _calibration.clear()
    if priors:
        _cost_priors.clear()
    if decisions:
        _decisions.clear()
        _metrics = MetricsRegistry()
