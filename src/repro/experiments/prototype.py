"""Prototype comparison: latency and satellite CPU per solution (Fig. 17).

Reproduces the S6.1 testbed study: five solutions, three procedures
(initial registration, session establishment, mobility registration by
LEO mobility), swept over procedure rates, on satellite hardware 1
(Raspberry Pi 4) with the home a multi-hop LEO path away.

Latency composes three M/M/1-style stages:

* satellite-side processing of the messages whose destination NF runs
  on board (slow hardware, the Baoyun/SkyCore bottleneck);
* home-side processing of the remaining messages (fast hardware);
* propagation for every boundary-crossing message (the 5G NTN tax);
* plus SpaceCore's fixed local-crypto overhead (Fig. 18a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..baselines.base import Solution
from ..baselines.solutions import ALL_SOLUTIONS
from ..fiveg.messages import ProcedureKind, Role
from ..hardware.model import (
    HardwarePlatform,
    RASPBERRY_PI_4,
    XEON_WORKSTATION,
    cpu_breakdown,
)
from ..hardware.queueing import SATURATED_LATENCY_S, mm1_wait_s

#: Fig. 17's x-axis.
FIG17_RATES: Tuple[int, ...] = (100, 200, 300, 400, 500)

#: Round trip between a serving satellite and the terrestrial home
#: over the ISL path + gateway (~10 hops each way).
GROUND_RTT_S = 0.120

_ALL_ROLES = frozenset(Role) - {Role.UE}


@dataclass(frozen=True)
class PrototypePoint:
    """One (solution, procedure, rate) sample of Fig. 17."""

    solution: str
    procedure: ProcedureKind
    rate_per_s: int
    latency_s: float
    satellite_cpu_percent: float
    saturated: bool


#: Procedures that run concurrently on the prototype satellite: while
#: session establishments are measured, registrations and (for logical
#: designs) mobility registrations keep arriving at the same rate.
_CONCURRENT = (ProcedureKind.INITIAL_REGISTRATION,
               ProcedureKind.SESSION_ESTABLISHMENT,
               ProcedureKind.MOBILITY_REGISTRATION)


def _stage_latency(platform: HardwarePlatform, solution: Solution,
                   kind: ProcedureKind, rate_per_s: float,
                   roles: frozenset) -> Tuple[float, bool]:
    """Service + queueing of one processing stage under the full
    concurrent workload (all three procedures at ``rate_per_s``)."""
    measured = [m for m in solution.flow(kind) if m.dst in roles]
    if not measured:
        return 0.0, False
    efficiency = solution.processing_efficiency
    background_msgs = sum(
        1 for other in _CONCURRENT
        for m in solution.flow(other) if m.dst in roles)
    total_service = sum(
        platform.procedure_cost_s(solution.flow(other), roles)
        for other in _CONCURRENT) * efficiency
    per_message = total_service / background_msgs
    arrival = rate_per_s * background_msgs
    wait, saturated = mm1_wait_s(arrival, per_message, platform.cores)
    service = platform.procedure_cost_s(measured, roles) * efficiency
    if saturated:
        return service + SATURATED_LATENCY_S, True
    return service + wait * len(measured), False


def solution_latency_s(solution: Solution, kind: ProcedureKind,
                       rate_per_s: float,
                       satellite: HardwarePlatform = RASPBERRY_PI_4,
                       home: HardwarePlatform = XEON_WORKSTATION,
                       ground_rtt_s: float = GROUND_RTT_S) -> Tuple[
                           float, bool]:
    """End-to-end signaling latency for one procedure; (s, saturated).

    A solution with no flow for the procedure (SpaceCore's eliminated
    C4) reports zero.  The satellite stage is loaded by the *combined*
    concurrent workload -- this is why Baoyun/DPCM registrations crawl
    (their on-board AMFs also absorb the per-pass mobility storm)
    while 5G NTN merely pays propagation.
    """
    flow = solution.flow(kind)
    if not flow:
        return 0.0, False
    sat_latency, sat_saturated = _stage_latency(
        satellite, solution, kind, rate_per_s, solution.on_board)
    ground_roles = _ALL_ROLES - solution.on_board
    home_latency, home_saturated = _stage_latency(
        home, solution, kind, rate_per_s, ground_roles)
    crossings = sum(1 for m in flow if solution.crosses_boundary(m))
    propagation = crossings * ground_rtt_s / 2.0
    total = (sat_latency + home_latency + propagation
             + solution.crypto_overhead_s)
    return total, sat_saturated or home_saturated


def solution_cpu_percent(solution: Solution, kind: ProcedureKind,
                         rate_per_s: float,
                         satellite: HardwarePlatform = RASPBERRY_PI_4
                         ) -> float:
    """Satellite CPU utilisation for one procedure at one rate."""
    flow = solution.flow(kind)
    if not flow:
        return 0.0
    raw = cpu_breakdown(satellite, rate_per_s, flow,
                        solution.on_board).total_percent
    return min(100.0, raw * solution.processing_efficiency)


def fig17_sweep(rates: Sequence[int] = FIG17_RATES,
                satellite: HardwarePlatform = RASPBERRY_PI_4
                ) -> List[PrototypePoint]:
    """The full Fig. 17 grid: 5 solutions x 3 procedures x rates."""
    procedures = (ProcedureKind.INITIAL_REGISTRATION,
                  ProcedureKind.SESSION_ESTABLISHMENT,
                  ProcedureKind.MOBILITY_REGISTRATION)
    points: List[PrototypePoint] = []
    for factory in ALL_SOLUTIONS:
        solution = factory()
        for kind in procedures:
            for rate in rates:
                latency, saturated = solution_latency_s(
                    solution, kind, rate, satellite)
                cpu = solution_cpu_percent(solution, kind, rate,
                                           satellite)
                points.append(PrototypePoint(
                    solution.name, kind, rate, latency, cpu, saturated))
    return points


def session_latency_comparison(rate_per_s: int = 300
                               ) -> Dict[str, float]:
    """The S6.2 headline: per-solution session-establishment latency."""
    return {
        factory().name: solution_latency_s(
            factory(), ProcedureKind.SESSION_ESTABLISHMENT,
            rate_per_s)[0]
        for factory in ALL_SOLUTIONS
    }
