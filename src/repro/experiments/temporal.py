"""Temporal dynamics of one satellite's signaling load (Fig. 12).

A fast-moving LEO satellite sweeps continents and oceans within one
orbit (~95 minutes).  Its Option 3 signaling load tracks the
population under its footprint: bursts over South America, Africa,
Europe/Asia, Oceania, near-silence over open ocean -- the Fig. 12
time series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..baselines.base import Solution
from ..baselines.options import option3_session_mobility
from ..geo.population import PopulationGrid
from ..orbits.constellation import Constellation
from ..orbits.coverage import footprint_radius_km, mean_dwell_time_s
from ..orbits.propagator import IdealPropagator


@dataclass(frozen=True)
class TemporalSample:
    """One Fig. 12 time point."""

    t_s: float
    lat_deg: float
    lon_deg: float
    region: str
    users_served: float
    signaling_per_s: float
    state_tx_per_s: float


def satellite_ground_track_load(
        constellation: Constellation,
        capacity: int,
        duration_s: float = 6000.0,
        step_s: float = 60.0,
        solution: Optional[Solution] = None,
        sat_plane: int = 0, sat_slot: int = 0,
        population: Optional[PopulationGrid] = None
        ) -> List[TemporalSample]:
    """Signaling and state-transmission load along one ground track.

    ``signaling_per_s`` counts the messages the satellite handles for
    its own users (Fig. 12 left); ``state_tx_per_s`` counts the state
    items migrated (Fig. 12 right).
    """
    solution = solution if solution is not None \
        else option3_session_mobility()
    if population is None:
        # An early satellite-direct service serves an operator-scale
        # subscriber base (millions, not billions); this is what makes
        # the per-region structure of Fig. 12 visible below the
        # per-satellite capacity cap.
        population = PopulationGrid(total_subscribers=2.0e6)
    propagator = IdealPropagator(constellation)
    radius = footprint_radius_km(constellation.altitude_km,
                                 constellation.min_elevation_deg)
    dwell = mean_dwell_time_s(constellation)
    rates = solution.procedure_rates_per_user(dwell)

    per_user_msgs = 0.0
    per_user_states = 0.0
    for kind, rate in rates.items():
        flow = solution.flow(kind)
        per_user_msgs += rate * solution.satellite_messages(flow)
        per_user_states += rate * sum(
            len(m.carries) + len(m.creates) for m in flow)

    import math
    samples: List[TemporalSample] = []
    t = 0.0
    while t <= duration_s:
        lat, lon = propagator.state(sat_plane, sat_slot, t).subpoint()
        users = population.capped_users(lat, lon, radius, capacity)
        samples.append(TemporalSample(
            t_s=t,
            lat_deg=math.degrees(lat),
            lon_deg=math.degrees(lon),
            region=population.region_of(lat, lon),
            users_served=users,
            signaling_per_s=users * per_user_msgs,
            state_tx_per_s=users * per_user_states,
        ))
        t += step_s
    return samples


def load_variation(samples: List[TemporalSample]) -> Tuple[float, float]:
    """(peak, trough) of the signaling series: the burstiness claim."""
    loads = [s.signaling_per_s for s in samples]
    return max(loads), min(loads)
