"""State-leakage comparison under attacks (Fig. 19).

Wraps the fault models with the evaluation's configuration: Starlink,
30K-user satellites, a constellation-wide subscriber base, hijacking
(Fig. 19a, cumulative over 100 minutes) and man-in-the-middle passive
listening without IPsec (Fig. 19b, per-second rates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..baselines.solutions import ALL_SOLUTIONS
from ..faults.attacks import (
    HijackScenario,
    hijack_leak_series,
    mitm_comparison,
)
from ..orbits.constellation import Constellation
from ..orbits.coverage import mean_dwell_time_s


@dataclass(frozen=True)
class LeakageStudy:
    """Both panels of Fig. 19 for one configuration."""

    hijack_series: Dict[str, List[Tuple[float, float]]]
    mitm_rates: Dict[str, float]


def fig19_study(constellation: Constellation, capacity: int = 30_000,
                duration_s: float = 6000.0,
                subscribers_per_satellite: int = 65_000
                ) -> LeakageStudy:
    """Run the full Fig. 19 comparison.

    ``subscribers_per_satellite`` scales the constellation-wide base a
    SkyCore-style design pre-provisions on every node; with ~1.5k
    satellites this lands at the 1e8 scale of the paper's y-axis.
    """
    dwell = mean_dwell_time_s(constellation)
    scenario = HijackScenario(
        capacity=capacity,
        total_subscribers=(subscribers_per_satellite
                           * constellation.total_satellites),
        dwell_s=dwell,
    )
    series = {}
    rates = {}
    solutions = [factory() for factory in ALL_SOLUTIONS]
    for solution in solutions:
        series[solution.name] = hijack_leak_series(solution, scenario,
                                                   duration_s)
    rates = mitm_comparison(solutions, capacity, dwell)
    return LeakageStudy(hijack_series=series, mitm_rates=rates)


def final_hijack_leaks(study: LeakageStudy) -> Dict[str, float]:
    """Cumulative leaked states at the end of the hijack window."""
    return {name: series[-1][1]
            for name, series in study.hijack_series.items()}
