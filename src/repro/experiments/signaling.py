"""Signaling-storm arithmetic: Fig. 10, Fig. 20, and Table 4.

For every (solution, constellation, capacity) point we compute:

* the **mean satellite** load: messages a typical serving satellite
  originates, terminates, or relays each second, including its fair
  share of multi-hop transit toward ground stations;
* the **hotspot satellite** load: the gateway-access satellite, which
  funnels its ground station's entire aggregate -- this is the
  bottleneck node the paper's per-satellite bars report;
* the **ground station** load: the aggregate of every active
  satellite's boundary-crossing messages, divided across gateways --
  the space-terrestrial asymmetry that makes the GS bars an order of
  magnitude taller (S3.1).

Event rates follow S3.1/S3.2: sessions every 106.9 s per user,
handovers/mobility registrations once per coverage pass, all scaled by
the satellite's user capacity {2K, 10K, 20K, 30K}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..baselines.base import Solution
from ..baselines.solutions import ALL_SOLUTIONS
from ..constants import SATELLITE_CAPACITIES
from ..fiveg.messages import ProcedureKind
from ..orbits.constellation import Constellation
from ..orbits.coverage import mean_dwell_time_s
from ..orbits.groundstations import GroundStation, default_ground_stations
from ..orbits.propagator import IdealPropagator
from ..runtime.cohort import DEFAULT_COHORTS, CohortStats, UECohortEngine
from ..runtime.memo import shard_memoized
from ..runtime.parallel import get_shared, run_sharded
from ..topology.grid import GridTopology

#: Fraction of satellites over populated land at any instant; ocean
#: and polar passes serve almost nobody (World Bank density, S6.2).
ACTIVE_SATELLITE_FRACTION = 0.45

#: Procedure groups for the Fig. 10 row split.
SESSION_KINDS = (ProcedureKind.SESSION_ESTABLISHMENT,
                 ProcedureKind.INITIAL_REGISTRATION)
MOBILITY_KINDS = (ProcedureKind.HANDOVER,
                  ProcedureKind.MOBILITY_REGISTRATION)


@dataclass(frozen=True)
class SignalingLoad:
    """Per-second signaling load at one design point."""

    solution: str
    constellation: str
    capacity: int
    satellite_mean_per_s: float
    satellite_hotspot_per_s: float
    ground_station_per_s: float
    by_procedure_satellite: Dict[ProcedureKind, float]
    by_procedure_ground: Dict[ProcedureKind, float]

    def satellite_rows(self) -> Tuple[float, float]:
        """(session row, mobility row) of Fig. 10's satellite panels."""
        session = sum(self.by_procedure_satellite[k]
                      for k in SESSION_KINDS)
        mobility = sum(self.by_procedure_satellite[k]
                       for k in MOBILITY_KINDS)
        return session, mobility

    def ground_rows(self) -> Tuple[float, float]:
        """(session row, mobility row) of the ground-station panels."""
        session = sum(self.by_procedure_ground[k] for k in SESSION_KINDS)
        mobility = sum(self.by_procedure_ground[k]
                       for k in MOBILITY_KINDS)
        return session, mobility


def _hops_key(constellation, stations, t):
    # Key by the full (frozen) constellation rather than its name:
    # synthetic shells share a name but differ in geometry.
    return (constellation, stations, t)


@shard_memoized(_hops_key)
def _cached_mean_hops(constellation: Constellation,
                      stations: Tuple[GroundStation, ...],
                      t: float) -> float:
    topology = GridTopology(IdealPropagator(constellation), list(stations))
    graph = topology.snapshot_graph(t, include_ground=False)
    sources = set()
    for gs in stations:
        access = topology.station_access_satellite(gs, t)
        if access >= 0:
            sources.add(access)
    if not sources:
        raise RuntimeError("no gateway has satellite coverage at t")
    distances = nx.multi_source_dijkstra_path_length(
        graph, sources, weight=None)
    return sum(distances.values()) / len(distances)  # repro: ignore[float-reduction-order] -- hop counts are ints (weight=None); integer sums are order-exact


def mean_hops_to_ground(constellation: Constellation,
                        stations: Optional[Sequence[GroundStation]] = None,
                        t: float = 0.0) -> float:
    """Mean ISL hop count from a satellite to its nearest gateway.

    Multi-source BFS from every gateway's access satellite over the
    +Grid graph -- the multi-hop factor of the storm arithmetic ("up
    to 48" hops in the paper's polar worst case).  The Dijkstra is
    memoized per process on (constellation, station set, t):
    ``reduction_factors`` and ``sweep`` ask for the same constellation
    many times, and sharded workers ask once per design point.
    """
    stations = (tuple(stations) if stations is not None
                else tuple(default_ground_stations()))
    return _cached_mean_hops(constellation, stations, t)


def _extra_local_messages(solution: Solution,
                          kind: ProcedureKind) -> float:
    """Sync/replica overheads beyond the base flow (per event)."""
    extra = 0.0
    if solution.sync_fanout and kind in (
            ProcedureKind.SESSION_ESTABLISHMENT,
            ProcedureKind.MOBILITY_REGISTRATION):
        # Each state change is broadcast to sync_fanout neighbours;
        # symmetric satellites both send and receive their share.
        extra += 2.0 * solution.sync_fanout
    return extra


def _extra_crossing_messages(solution: Solution,
                             kind: ProcedureKind) -> float:
    """DPCM keeps the device replica coherent with the home."""
    if solution.replica_update_messages and kind in (
            ProcedureKind.SESSION_ESTABLISHMENT,
            ProcedureKind.MOBILITY_REGISTRATION):
        return float(solution.replica_update_messages)
    return 0.0


def signaling_load(solution: Solution, constellation: Constellation,
                   capacity: int,
                   stations: Optional[Sequence[GroundStation]] = None,
                   hops: Optional[float] = None) -> SignalingLoad:
    """The full load computation for one design point."""
    stations = (list(stations) if stations is not None
                else default_ground_stations())
    if hops is None:
        hops = mean_hops_to_ground(constellation, stations)
    dwell = mean_dwell_time_s(constellation)
    rates = solution.procedure_rates_per_user(dwell)
    n_sats_active = constellation.total_satellites * \
        ACTIVE_SATELLITE_FRACTION
    gs_aggregation = n_sats_active / len(stations)

    sat_by_kind: Dict[ProcedureKind, float] = {}
    gs_by_kind: Dict[ProcedureKind, float] = {}
    sat_mean_total = 0.0
    gs_total = 0.0
    crossing_origin_total = 0.0
    for kind, per_user_rate in rates.items():
        event_rate = capacity * per_user_rate
        flow = solution.flow(kind)
        local = solution.satellite_messages(flow)
        crossing = (solution.crossing_messages(flow)
                    + _extra_crossing_messages(solution, kind))
        ground = (solution.ground_messages(flow)
                  + _extra_crossing_messages(solution, kind))
        local_extra = _extra_local_messages(solution, kind)
        sat_rate = event_rate * (local + local_extra + crossing * hops)
        gs_rate = event_rate * ground * gs_aggregation
        sat_by_kind[kind] = sat_rate
        gs_by_kind[kind] = gs_rate
        sat_mean_total += sat_rate
        gs_total += gs_rate
        crossing_origin_total += event_rate * crossing
    # The gateway-access satellite relays its GS's whole aggregate.
    hotspot = sat_mean_total + crossing_origin_total * gs_aggregation
    return SignalingLoad(
        solution=solution.name,
        constellation=constellation.name,
        capacity=capacity,
        satellite_mean_per_s=sat_mean_total,
        satellite_hotspot_per_s=hotspot,
        ground_station_per_s=gs_total,
        by_procedure_satellite=sat_by_kind,
        by_procedure_ground=gs_by_kind,
    )


def _sweep_point(work) -> SignalingLoad:
    """One (solution, constellation, capacity) design point, shardable.

    The constellations, solution specs, and station set ship through
    the shared registry (once per worker, not once per task); the work
    item is just three small indices.  The worker-side hop count comes
    from the shard-local memo, so a worker that sees several capacities
    of one constellation runs the Dijkstra once -- same arithmetic,
    same floats, as the serial loop.
    """
    constellation_index, solution_index, capacity = work
    constellation = get_shared("sweep:constellations")[constellation_index]
    item = get_shared("sweep:solutions")[solution_index]
    stations = get_shared("sweep:stations")
    solution = item() if callable(item) else item
    hops = mean_hops_to_ground(constellation, stations)
    return signaling_load(solution, constellation, capacity,
                          list(stations), hops)


def sweep(solutions: Iterable, constellations: Iterable[Constellation],
          capacities: Sequence[int] = SATELLITE_CAPACITIES,
          stations: Optional[Sequence[GroundStation]] = None,
          workers: Optional[int] = None) -> List[SignalingLoad]:
    """Cartesian sweep used by Fig. 10 (options) and Fig. 20 (solutions).

    ``solutions`` takes factories or instances.  With ``workers > 1``
    (or ``REPRO_WORKERS`` set) the design points fan out across a
    process pool under the execution planner -- batched into chunks,
    or folded back to the serial path when the grid is below
    break-even; results come back in the same nested
    (constellation, solution, capacity) order as the serial walk, with
    bit-identical values.  Parallel runs need picklable solution specs
    (module-level factories or instances, not lambdas).
    """
    stations = (tuple(stations) if stations is not None
                else tuple(default_ground_stations()))
    solutions = list(solutions)
    constellations = list(constellations)
    points = [(constellation_index, solution_index, capacity)
              for constellation_index in range(len(constellations))
              for solution_index in range(len(solutions))
              for capacity in capacities]
    return run_sharded(
        _sweep_point, points, workers=workers,
        shared={"sweep:constellations": constellations,
                "sweep:solutions": solutions,
                "sweep:stations": stations},
        label="signaling.sweep")


def cohort_load_point(solution, constellation: Constellation,
                      n_ues: int = 1_000_000, duration_s: float = 3600.0,
                      seed: int = 0,
                      n_cohorts: int = DEFAULT_COHORTS) -> CohortStats:
    """One population-scale load point on the vectorized cohort engine.

    The executable counterpart of :func:`signaling_load` at full
    population: where the arithmetic multiplies closed-form rates,
    this samples the arrival processes per cohort and applies message
    costs in batch, so 1M UEs cost O(cohorts).  ``solution`` takes a
    factory or an instance.
    """
    solution = solution() if callable(solution) else solution
    engine = UECohortEngine(constellation, n_ues=n_ues, solution=solution,
                            seed=seed, n_cohorts=n_cohorts)
    return engine.run(duration_s)


def reduction_factors(constellation: Constellation,
                      capacity: int = 30_000,
                      stations: Optional[Sequence[GroundStation]] = None
                      ) -> Dict[str, float]:
    """Table 4: SpaceCore's satellite signaling reduction per baseline.

    Reduction = baseline hotspot load / SpaceCore hotspot load.
    """
    stations = (list(stations) if stations is not None
                else default_ground_stations())
    hops = mean_hops_to_ground(constellation, stations)
    loads = {
        factory().name: signaling_load(factory(), constellation, capacity,
                                       stations, hops)
        for factory in ALL_SOLUTIONS
    }
    spacecore_load = loads["SpaceCore"].satellite_hotspot_per_s
    return {
        name: load.satellite_hotspot_per_s / spacecore_load
        for name, load in loads.items() if name != "SpaceCore"
    }
