"""Geospatial relaying under ideal and J4 orbits (Fig. 18b).

Routes Beijing -> New York traffic through each constellation with
Algorithm 1, once under ideal two-body orbits and once under the J4
secular propagator, sampling departures across an orbital period.
The paper's claims to reproduce:

* Algorithm 1 guarantees delivery under both propagators;
* the delay distributions are nearly identical (runtime coordinates
  self-calibrate the perturbations);
* small constellations (Iridium) occasionally detour (>100 ms extra)
  with sub-percent probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..orbits.constellation import Constellation
from ..orbits.coverage import serving_satellite
from ..orbits.propagator import make_propagator
from ..orbits.snapshot import snapshot_for
from ..topology.batch_routing import BatchGeoRouter
from ..topology.grid import GridTopology
from ..topology.routing import GeospatialRouter

BEIJING = (math.radians(39.9), math.radians(116.4))
NEW_YORK = (math.radians(40.7), math.radians(-74.0))


@dataclass(frozen=True)
class RelayTrial:
    """One routed packet."""

    t_s: float
    propagator: str
    delivered: bool
    delay_ms: float
    hops: int


@dataclass(frozen=True)
class RelayComparison:
    """Ideal-vs-J4 summary for one constellation (a Fig. 18b panel)."""

    constellation: str
    delivery_rate_ideal: float
    delivery_rate_j4: float
    mean_delay_ideal_ms: float
    mean_delay_j4_ms: float
    max_extra_delay_ms: float

    @property
    def delays_similar(self) -> bool:
        """The paper's headline: J4 tracks ideal closely on average."""
        return abs(self.mean_delay_j4_ms
                   - self.mean_delay_ideal_ms) < 25.0


def relay_trials(constellation: Constellation, propagator_kind: str,
                 src: Tuple[float, float] = BEIJING,
                 dst: Tuple[float, float] = NEW_YORK,
                 samples: int = 24,
                 horizon_s: float = 5700.0) -> List[RelayTrial]:
    """Route ``samples`` packets spread over ``horizon_s`` seconds."""
    propagator = make_propagator(constellation, propagator_kind)
    topology = GridTopology(propagator, [])
    router = GeospatialRouter(topology, max_hops=512)
    trials: List[RelayTrial] = []
    for i in range(samples):
        t = horizon_s * i / samples
        # One snapshot per sample epoch serves both the source lookup
        # and every hop decision of the routed packet.
        snap = snapshot_for(propagator, t)
        src_sat = snap.serving_satellite(*src)
        if src_sat < 0:
            trials.append(RelayTrial(t, propagator_kind, False, 0.0, 0))
            continue
        result = router.route(src_sat, dst[0], dst[1], t)
        trials.append(RelayTrial(t, propagator_kind, result.delivered,
                                 result.delay_s * 1000.0, result.hops))
    return trials


def compare_ideal_vs_j4(constellation: Constellation,
                        samples: int = 24) -> RelayComparison:
    """The Fig. 18b panel for one constellation."""
    ideal = relay_trials(constellation, "ideal", samples=samples)
    j4 = relay_trials(constellation, "j4", samples=samples)
    ideal_ok = [t for t in ideal if t.delivered]
    j4_ok = [t for t in j4 if t.delivered]

    def mean_delay(trials: List[RelayTrial]) -> float:
        return (sum(t.delay_ms for t in trials) / len(trials)
                if trials else float("inf"))

    extra = 0.0
    for a, b in zip(ideal, j4):
        if a.delivered and b.delivered:
            extra = max(extra, b.delay_ms - a.delay_ms)
    return RelayComparison(
        constellation=constellation.name,
        delivery_rate_ideal=len(ideal_ok) / len(ideal),
        delivery_rate_j4=len(j4_ok) / len(j4),
        mean_delay_ideal_ms=mean_delay(ideal_ok),
        mean_delay_j4_ms=mean_delay(j4_ok),
        max_extra_delay_ms=extra,
    )


@dataclass(frozen=True)
class RoutingSweep:
    """Bulk Algorithm 1 statistics for one constellation epoch."""

    constellation: str
    packets: int
    delivered_fraction: float
    degraded_fraction: float
    mean_delay_ms: float
    mean_hops: float
    scalar_fallbacks: int


def routing_sweep(constellation: Constellation, packets: int = 2000,
                  t: float = 300.0, seed: int = 11,
                  propagator_kind: str = "ideal",
                  router: Optional[BatchGeoRouter] = None
                  ) -> RoutingSweep:
    """Route a Monte Carlo packet wave through the batch plane.

    Sources are uniform over the constellation; destinations are
    uniform over the inclination band (the region Algorithm 1 serves
    directly).  One ``route_batch`` call answers the whole wave --
    this is the workload the routing benchmark times.
    """
    if router is None:
        propagator = make_propagator(constellation, propagator_kind)
        router = BatchGeoRouter(GridTopology(propagator, []))
    rng = np.random.default_rng(seed)
    lat_band = math.radians(
        min(constellation.inclination_deg,
            180.0 - constellation.inclination_deg)) - 0.02
    src = rng.integers(0, constellation.total_satellites, packets)
    lats = rng.uniform(-lat_band, lat_band, packets)
    lons = rng.uniform(-math.pi, math.pi, packets)
    result = router.route_batch(src, lats, lons, t)
    delivered = result.delivered
    n_ok = int(delivered.sum())
    delay_ms = (float(result.delay_s[delivered].mean() * 1000.0)
                if n_ok else float("inf"))
    hops = float(result.hops[delivered].mean()) if n_ok else 0.0
    return RoutingSweep(
        constellation=constellation.name,
        packets=packets,
        delivered_fraction=n_ok / packets,
        degraded_fraction=float(result.degraded.sum()) / packets,
        mean_delay_ms=delay_ms,
        mean_hops=hops,
        scalar_fallbacks=int(result.fallback.sum()),
    )


def batch_path_stretch(constellation: Constellation, pairs: int = 64,
                       t: float = 0.0, seed: int = 11) -> float:
    """Mean delay stretch of Algorithm 1 over the Dijkstra optimum.

    Both sides run batched: one ``route_batch`` for the stateless
    plane, one multi-source ``route_many`` for the baseline (scipy
    when available, networkx otherwise).
    """
    from ..topology.routing import DijkstraRouter
    propagator = make_propagator(constellation, "ideal")
    topology = GridTopology(propagator, [])
    geo = BatchGeoRouter(topology)
    base = DijkstraRouter(topology)
    snap = snapshot_for(propagator, t)
    rng = np.random.default_rng(seed)
    lat_band = math.radians(
        min(constellation.inclination_deg,
            180.0 - constellation.inclination_deg)) - 0.05
    lats = rng.uniform(-lat_band, lat_band, pairs)
    lons = rng.uniform(-math.pi, math.pi, pairs)
    srcs = rng.integers(0, constellation.total_satellites, pairs)
    dsts = [snap.serving_satellite(float(lat), float(lon))
            for lat, lon in zip(lats, lons)]
    keep = [k for k, d in enumerate(dsts) if d >= 0]
    geo_batch = geo.route_batch(srcs[keep], lats[keep], lons[keep], t)
    base_batch = base.route_many([int(srcs[k]) for k in keep],
                                 [dsts[k] for k in keep], t)
    stretches = []
    for i, baseline in enumerate(base_batch):
        if not (geo_batch.delivered[i] and baseline.delivered):
            continue
        if baseline.delay_s == 0:
            stretches.append(1.0)
        else:
            stretches.append(float(geo_batch.delay_s[i])
                             / baseline.delay_s)
    if not stretches:
        raise RuntimeError("no pair delivered on both planes")
    return sum(stretches) / len(stretches)


def path_stretch_vs_optimal(constellation: Constellation,
                            t: float = 0.0) -> float:
    """Ablation: Algorithm 1's delay stretch over Dijkstra."""
    from ..topology.routing import DijkstraRouter, path_stretch
    propagator = make_propagator(constellation, "ideal")
    topology = GridTopology(propagator, [])
    router = GeospatialRouter(topology)
    src = serving_satellite(propagator, t, *BEIJING)
    dst = serving_satellite(propagator, t, *NEW_YORK)
    geo = router.route(src, *NEW_YORK, t)
    base = DijkstraRouter(topology).route(src, dst, t)
    if not (geo.delivered and base.delivered):
        raise RuntimeError("both routers should deliver in a healthy grid")
    return path_stretch(geo, base)
