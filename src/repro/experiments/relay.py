"""Geospatial relaying under ideal and J4 orbits (Fig. 18b).

Routes Beijing -> New York traffic through each constellation with
Algorithm 1, once under ideal two-body orbits and once under the J4
secular propagator, sampling departures across an orbital period.
The paper's claims to reproduce:

* Algorithm 1 guarantees delivery under both propagators;
* the delay distributions are nearly identical (runtime coordinates
  self-calibrate the perturbations);
* small constellations (Iridium) occasionally detour (>100 ms extra)
  with sub-percent probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..orbits.constellation import Constellation
from ..orbits.coverage import serving_satellite
from ..orbits.propagator import make_propagator
from ..orbits.snapshot import snapshot_for
from ..topology.batch_routing import BatchGeoRouter
from ..topology.grid import GridTopology
from ..topology.routing import RELAY_MAX_HOPS, GeospatialRouter

BEIJING = (math.radians(39.9), math.radians(116.4))
NEW_YORK = (math.radians(40.7), math.radians(-74.0))


@dataclass(frozen=True)
class RelayTrial:
    """One routed packet."""

    t_s: float
    propagator: str
    delivered: bool
    delay_ms: float
    hops: int


@dataclass(frozen=True)
class RelayComparison:
    """Ideal-vs-J4 summary for one constellation (a Fig. 18b panel).

    ``mean_delay_*_ms`` is ``None`` when that propagator delivered
    nothing -- never ``inf``, which ``json.dumps`` would emit as the
    non-standard ``Infinity`` token inside report artifacts.
    """

    constellation: str
    delivery_rate_ideal: float
    delivery_rate_j4: float
    mean_delay_ideal_ms: Optional[float]
    mean_delay_j4_ms: Optional[float]
    max_extra_delay_ms: float

    @property
    def delays_similar(self) -> bool:
        """The paper's headline: J4 tracks ideal closely on average."""
        if self.mean_delay_ideal_ms is None \
                or self.mean_delay_j4_ms is None:
            return False
        return abs(self.mean_delay_j4_ms
                   - self.mean_delay_ideal_ms) < 25.0


def relay_times(samples: int, horizon_s: float = 5700.0) -> List[float]:
    """The exact departure epochs the relay pipeline samples.

    The same ``horizon_s * i / samples`` floats the scalar loop
    computed, so the batched sweep keys identical snapshot/table cache
    entries and routes bit-identical packets.
    """
    return [horizon_s * i / samples for i in range(samples)]


def relay_router(constellation: Constellation, propagator_kind: str,
                 metrics: Optional[MetricsRegistry] = None
                 ) -> BatchGeoRouter:
    """A relay-pipeline batch router (both planes at RELAY_MAX_HOPS).

    The hop budget is threaded into the batch plane *and* its embedded
    scalar fallback through the shared constant: constructing the two
    planes with different budgets would silently change which long
    detours survive (the 256-vs-512 parity bug).
    """
    propagator = make_propagator(constellation, propagator_kind)
    return BatchGeoRouter(GridTopology(propagator, []),
                          max_hops=RELAY_MAX_HOPS, metrics=metrics)


def relay_trials(constellation: Constellation, propagator_kind: str,
                 src: Tuple[float, float] = BEIJING,
                 dst: Tuple[float, float] = NEW_YORK,
                 samples: int = 24,
                 horizon_s: float = 5700.0,
                 router: Optional[BatchGeoRouter] = None
                 ) -> List[RelayTrial]:
    """Route ``samples`` packets spread over ``horizon_s`` seconds.

    One packet departs per sample epoch; the whole horizon routes as a
    single :meth:`~repro.topology.batch_routing.BatchGeoRouter.
    route_sweep` (grouped by epoch, one next-hop table per epoch),
    bit-identical to the retired per-epoch scalar loop.
    """
    if router is None:
        router = relay_router(constellation, propagator_kind)
    ts = relay_times(samples, horizon_s)
    src_sats, wave = router.sweep_trials(src, dst, ts)
    return [RelayTrial(t, propagator_kind, bool(wave.delivered[i]),
                       float(wave.delay_s[i]) * 1000.0,
                       int(wave.hops[i]))
            for i, t in enumerate(ts)]


def compare_ideal_vs_j4(constellation: Constellation,
                        samples: int = 24) -> RelayComparison:
    """The Fig. 18b panel for one constellation.

    Both propagator legs run batched -- the J4 leg reuses the same
    ``snapshot_for`` path as the ideal one (a ``ConstellationSnapshot``
    reads its rates off whichever propagator built it), so perturbed
    orbits route at array speed too.
    """
    ideal = relay_trials(constellation, "ideal", samples=samples)
    j4 = relay_trials(constellation, "j4", samples=samples)
    ideal_ok = [t for t in ideal if t.delivered]
    j4_ok = [t for t in j4 if t.delivered]

    def mean_delay(trials: List[RelayTrial]) -> Optional[float]:
        return (sum(t.delay_ms for t in trials) / len(trials)
                if trials else None)

    def delivery_rate(ok: List[RelayTrial],
                      all_trials: List[RelayTrial]) -> float:
        return len(ok) / len(all_trials) if all_trials else 0.0

    extra = 0.0
    for a, b in zip(ideal, j4):
        if a.delivered and b.delivered:
            extra = max(extra, b.delay_ms - a.delay_ms)
    return RelayComparison(
        constellation=constellation.name,
        delivery_rate_ideal=delivery_rate(ideal_ok, ideal),
        delivery_rate_j4=delivery_rate(j4_ok, j4),
        mean_delay_ideal_ms=mean_delay(ideal_ok),
        mean_delay_j4_ms=mean_delay(j4_ok),
        max_extra_delay_ms=extra,
    )


@dataclass(frozen=True)
class RelaySweepStats:
    """One epoch-sweep relay run plus its table-reuse accounting."""

    constellation: str
    propagator: str
    epochs: int
    routed: int
    delivered: int
    mean_delay_ms: Optional[float]
    mean_hops: float
    table_builds: int
    scalar_fallbacks: int


def relay_sweep_stats(constellation: Constellation,
                      propagator_kind: str = "ideal",
                      samples: int = 24,
                      horizon_s: float = 5700.0) -> RelaySweepStats:
    """Run the relay sweep once and report what the plane did.

    The report's routing section uses this to show the epoch-sweep
    path working: exactly one next-hop table build per distinct epoch
    (``routing.table_builds``) no matter how often the sweep repeats.
    """
    metrics = MetricsRegistry()
    router = relay_router(constellation, propagator_kind,
                          metrics=metrics)
    ts = relay_times(samples, horizon_s)
    src_sats, wave = router.sweep_trials(BEIJING, NEW_YORK, ts)
    delivered = wave.delivered
    n_ok = int(delivered.sum())
    return RelaySweepStats(
        constellation=constellation.name,
        propagator=propagator_kind,
        epochs=samples,
        routed=int((src_sats >= 0).sum()),
        delivered=n_ok,
        mean_delay_ms=(float(wave.delay_s[delivered].mean()) * 1000.0
                       if n_ok else None),
        mean_hops=float(wave.hops[delivered].mean()) if n_ok else 0.0,
        table_builds=int(metrics.counter_value("routing.table_builds")),
        scalar_fallbacks=int(wave.fallback.sum()),
    )


@dataclass(frozen=True)
class RoutingSweep:
    """Bulk Algorithm 1 statistics for one constellation epoch."""

    constellation: str
    packets: int
    delivered_fraction: float
    degraded_fraction: float
    mean_delay_ms: float
    mean_hops: float
    scalar_fallbacks: int


def routing_sweep(constellation: Constellation, packets: int = 2000,
                  t: float = 300.0, seed: int = 11,
                  propagator_kind: str = "ideal",
                  router: Optional[BatchGeoRouter] = None
                  ) -> RoutingSweep:
    """Route a Monte Carlo packet wave through the batch plane.

    Sources are uniform over the constellation; destinations are
    uniform over the inclination band (the region Algorithm 1 serves
    directly).  One ``route_batch`` call answers the whole wave --
    this is the workload the routing benchmark times.
    """
    if router is None:
        propagator = make_propagator(constellation, propagator_kind)
        router = BatchGeoRouter(GridTopology(propagator, []))
    rng = np.random.default_rng(seed)
    lat_band = math.radians(
        min(constellation.inclination_deg,
            180.0 - constellation.inclination_deg)) - 0.02
    src = rng.integers(0, constellation.total_satellites, packets)
    lats = rng.uniform(-lat_band, lat_band, packets)
    lons = rng.uniform(-math.pi, math.pi, packets)
    result = router.route_batch(src, lats, lons, t)
    delivered = result.delivered
    n_ok = int(delivered.sum())
    delay_ms = (float(result.delay_s[delivered].mean() * 1000.0)
                if n_ok else float("inf"))
    hops = float(result.hops[delivered].mean()) if n_ok else 0.0
    return RoutingSweep(
        constellation=constellation.name,
        packets=packets,
        delivered_fraction=n_ok / packets,
        degraded_fraction=float(result.degraded.sum()) / packets,
        mean_delay_ms=delay_ms,
        mean_hops=hops,
        scalar_fallbacks=int(result.fallback.sum()),
    )


def batch_path_stretch(constellation: Constellation, pairs: int = 64,
                       t: float = 0.0, seed: int = 11) -> float:
    """Mean delay stretch of Algorithm 1 over the Dijkstra optimum.

    Both sides run batched: one ``route_batch`` for the stateless
    plane, one multi-source ``route_many`` for the baseline (scipy
    when available, networkx otherwise).
    """
    from ..topology.routing import DijkstraRouter
    propagator = make_propagator(constellation, "ideal")
    topology = GridTopology(propagator, [])
    geo = BatchGeoRouter(topology)
    base = DijkstraRouter(topology)
    snap = snapshot_for(propagator, t)
    rng = np.random.default_rng(seed)
    lat_band = math.radians(
        min(constellation.inclination_deg,
            180.0 - constellation.inclination_deg)) - 0.05
    lats = rng.uniform(-lat_band, lat_band, pairs)
    lons = rng.uniform(-math.pi, math.pi, pairs)
    srcs = rng.integers(0, constellation.total_satellites, pairs)
    dsts = [snap.serving_satellite(float(lat), float(lon))
            for lat, lon in zip(lats, lons)]
    keep = [k for k, d in enumerate(dsts) if d >= 0]
    geo_batch = geo.route_batch(srcs[keep], lats[keep], lons[keep], t)
    base_batch = base.route_many([int(srcs[k]) for k in keep],
                                 [dsts[k] for k in keep], t)
    stretches = []
    for i, baseline in enumerate(base_batch):
        if not (geo_batch.delivered[i] and baseline.delivered):
            continue
        if baseline.delay_s == 0:
            stretches.append(1.0)
        else:
            stretches.append(float(geo_batch.delay_s[i])
                             / baseline.delay_s)
    if not stretches:
        raise RuntimeError("no pair delivered on both planes")
    return sum(stretches) / len(stretches)


def path_stretch_vs_optimal(constellation: Constellation,
                            t: float = 0.0) -> float:
    """Ablation: Algorithm 1's delay stretch over Dijkstra."""
    from ..topology.routing import DijkstraRouter, path_stretch
    propagator = make_propagator(constellation, "ideal")
    topology = GridTopology(propagator, [])
    router = GeospatialRouter(topology)
    src = serving_satellite(propagator, t, *BEIJING)
    dst = serving_satellite(propagator, t, *NEW_YORK)
    geo = router.route(src, *NEW_YORK, t)
    base = DijkstraRouter(topology).route(src, dst, t)
    if not (geo.delivered and base.delivered):
        raise RuntimeError("both routers should deliver in a healthy grid")
    return path_stretch(geo, base)
