"""Instrumented experiment runs: metrics snapshots and sim-time traces.

The observability subsystem (:mod:`repro.obs`) is deliberately inert
until an experiment hands its registry and tracer to the layers it
wants watched.  This module is that glue: it runs the chaos-churn
experiment and the population-scale cohort sweep with per-shard
:class:`~repro.obs.metrics.MetricsRegistry` instances, then folds the
per-shard snapshots with
:func:`~repro.obs.metrics.merge_snapshots` **in shard-index order** --
the same order whether the shards ran serially or across a process
pool -- so the merged artifact is bit-identical for any worker count.

Nothing about the execution medium (worker count, wall time, host)
appears in any payload; every timestamp is simulated time.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..obs import MetricsRegistry, Tracer, merge_snapshots
from ..orbits.constellation import Constellation
from ..runtime.cohort import UECohortEngine
from ..runtime.parallel import get_shared, run_sharded, seed_for
from .chaos_availability import ChaosScenario, run_chaos_availability

__all__ = [
    "chaos_observability",
    "cohort_observability",
    "write_metrics_snapshot",
    "write_trace_jsonl",
]


# ---------------------------------------------------------------------------
# Chaos Monte Carlo, instrumented
# ---------------------------------------------------------------------------

def _observed_chaos_trial(work) -> Dict:
    """One instrumented churn trial (module-level: must pickle).

    Each trial gets a *fresh* registry and tracer, so per-trial
    snapshots are independent of sharding; the parent does the only
    cross-trial arithmetic (the merge), in trial order.
    """
    trial, base_seed = work
    scenario = get_shared("obs:scenario")
    constellation = get_shared("obs:constellation")
    trial_scenario = replace(
        scenario, seed=seed_for(base_seed, f"chaos-trial:{trial}"))
    metrics = MetricsRegistry()
    tracer = Tracer()
    result = run_chaos_availability(constellation=constellation,
                                    scenario=trial_scenario,
                                    metrics=metrics, tracer=tracer)
    spans = tracer.to_dicts()
    for span in spans:
        span["attrs"]["trial"] = trial
    return {
        "trial": trial,
        "snapshot": metrics.snapshot(),
        "trace": spans,
        "final_spacecore_survival": result.final_spacecore_survival,
        "final_baseline_survival": result.final_baseline_survival,
    }


def chaos_observability(n_trials: int = 1, base_seed: int = 0,
                        scenario: Optional[ChaosScenario] = None,
                        constellation: Optional[Constellation] = None,
                        workers: Optional[int] = None) -> Dict:
    """Instrumented chaos Monte Carlo: merged metrics + full trace.

    Trial ``k`` is seeded ``seed_for(base_seed, "chaos-trial:k")`` and
    instrumented with its own registry/tracer; snapshots merge in
    trial order and traces concatenate in trial order, so the payload
    is bit-identical for any ``workers`` value.
    """
    if n_trials < 1:
        raise ValueError("need at least one trial")
    scenario = scenario if scenario is not None else ChaosScenario()
    work = [(trial, base_seed) for trial in range(n_trials)]
    shards = run_sharded(_observed_chaos_trial, work, workers=workers,
                         shared={"obs:scenario": scenario,
                                 "obs:constellation": constellation},
                         label="obs.chaos")
    return {
        "experiment": "chaos",
        "base_seed": base_seed,
        "n_trials": n_trials,
        "snapshot": merge_snapshots([s["snapshot"] for s in shards]),
        "per_trial": [{"trial": s["trial"], "snapshot": s["snapshot"]}
                      for s in shards],
        "trace": [span for s in shards for span in s["trace"]],
    }


# ---------------------------------------------------------------------------
# Cohort-engine sweep, instrumented
# ---------------------------------------------------------------------------

def _solution_by_name(name: str):
    """Resolve a solution factory by display name inside a shard."""
    from ..baselines import ALL_SOLUTIONS
    for factory in ALL_SOLUTIONS:
        solution = factory()
        if solution.name == name:
            return solution
    raise KeyError(f"unknown solution {name!r}")


def _observed_cohort_point(work) -> Dict:
    """One instrumented cohort design point (module-level: must pickle)."""
    index, solution_name, n_ues, duration_s, base_seed, n_cohorts = work
    del index  # kept in the work tuple for stable ordering/debugging
    constellation = get_shared("cohort:constellation")
    metrics = MetricsRegistry()
    engine = UECohortEngine(
        constellation, n_ues=n_ues,
        solution=_solution_by_name(solution_name),
        seed=seed_for(base_seed, f"cohort-point:{solution_name}"),
        n_cohorts=n_cohorts, metrics=metrics)
    stats = engine.run(duration_s)
    return {
        "solution": solution_name,
        "snapshot": metrics.snapshot(),
        "events_total": stats.events_total,
        "signaling_messages": stats.signaling_messages,
    }


def cohort_observability(solutions: Optional[Sequence[str]] = None,
                         constellation: Optional[Constellation] = None,
                         n_ues: int = 20_000, duration_s: float = 600.0,
                         base_seed: int = 0, n_cohorts: int = 32,
                         workers: Optional[int] = None) -> Dict:
    """Instrumented cohort sweep: one design point per solution.

    Each point runs on its own registry with a seed derived from the
    solution name (not the shard slot), so the merged snapshot is
    independent of worker count and of the order solutions are listed
    relative to pool scheduling.
    """
    if constellation is None:
        from ..orbits.constellation import starlink
        constellation = starlink()
    if solutions is None:
        from ..baselines import ALL_SOLUTIONS
        solutions = [factory().name for factory in ALL_SOLUTIONS]
    work = [(index, name, n_ues, duration_s, base_seed, n_cohorts)
            for index, name in enumerate(solutions)]
    shards = run_sharded(_observed_cohort_point, work, workers=workers,
                         shared={"cohort:constellation": constellation},
                         label="obs.cohort")
    return {
        "experiment": "cohort",
        "base_seed": base_seed,
        "n_ues": n_ues,
        "duration_s": duration_s,
        "snapshot": merge_snapshots([s["snapshot"] for s in shards]),
        "per_point": shards,
    }


# ---------------------------------------------------------------------------
# Artifact writers
# ---------------------------------------------------------------------------

def write_metrics_snapshot(path: str, payload: Dict) -> None:
    """Write the snapshot artifact, sans trace, with sorted keys.

    The trace rides in the payload for convenience but belongs in the
    JSONL artifact (:func:`write_trace_jsonl`); stripping it here
    keeps the snapshot small and diffable -- CI compares the
    ``--workers 1`` and ``--workers 2`` files byte-for-byte.
    """
    slim = {key: value for key, value in payload.items()
            if key != "trace"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(slim, fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_trace_jsonl(path: str, payload: Dict) -> int:
    """Write the trace as one sorted-key JSON object per line."""
    spans = payload.get("trace", [])
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span, sort_keys=True) + "\n")
    return len(spans)
