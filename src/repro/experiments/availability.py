"""Service availability under space-segment failures.

Extends S3.3's qualitative argument into a sweep: as satellites fail
(radiation, debris, geomagnetic storms) and links degrade, what
fraction of session establishments still completes?

Two effects compound for home-routed designs:

* **procedure fragility** -- every message of a long stateful flow
  must survive its links (exponential in flow length x path length);
* **reachability** -- the ISL path to a gateway must still exist.

SpaceCore's four local radio messages dodge both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from ..baselines.solutions import fiveg_ntn, spacecore
from ..faults.failures import procedure_success_probability
from ..fiveg.messages import ProcedureKind
from ..orbits.constellation import Constellation
from ..orbits.groundstations import default_ground_stations
from ..orbits.propagator import IdealPropagator
from ..topology.grid import GridTopology


@dataclass(frozen=True)
class AvailabilityPoint:
    """Session-establishment availability at one failure level."""

    failure_fraction: float
    solution: str
    reachability: float          # fraction of sats that reach a gateway
    procedure_survival: float    # per-attempt message-level survival
    availability: float          # the product


def gateway_reachability(constellation: Constellation,
                         failure_fraction: float,
                         seed: int = 0,
                         t: float = 0.0) -> float:
    """Fraction of live satellites with an ISL path to some gateway."""
    if not 0.0 <= failure_fraction < 1.0:
        raise ValueError("failure fraction must be in [0, 1)")
    stations = default_ground_stations()
    topology = GridTopology(IdealPropagator(constellation), stations)
    rng = random.Random(seed)
    total = constellation.total_satellites
    for sat in rng.sample(range(total), int(total * failure_fraction)):
        topology.fail_satellite(sat)
    graph = topology.snapshot_graph(t, include_ground=False)
    sources = set()
    for gs in stations:
        access = topology.station_access_satellite(gs, t)
        if access >= 0:
            sources.add(access)
    if not sources:
        return 0.0
    reachable = set()
    for component in nx.connected_components(graph):
        if component & sources:
            reachable |= component
    live = graph.number_of_nodes()
    return len(reachable) / live if live else 0.0


def availability_sweep(constellation: Constellation,
                       failure_fractions: Tuple[float, ...] = (
                           0.0, 0.025, 0.05, 0.1, 0.2),
                       per_link_loss: float = 0.02,
                       path_hops: float = 6.0,
                       seed: int = 0) -> List[AvailabilityPoint]:
    """Compare SpaceCore vs 5G NTN availability as failures mount.

    ``per_link_loss`` is the per-wireless-hop message loss; messages
    crossing to the ground traverse ``path_hops`` links.
    """
    points: List[AvailabilityPoint] = []
    for fraction in failure_fractions:
        reach = gateway_reachability(constellation, fraction, seed)
        for solution in (spacecore(), fiveg_ntn()):
            flow = solution.flow(ProcedureKind.SESSION_ESTABLISHMENT)
            crossing = solution.crossing_messages(flow)
            local = len(flow) - crossing
            # Local messages ride one radio hop; crossing messages ride
            # the radio hop plus the ISL path.
            crossing_loss = 1.0 - (1.0 - per_link_loss) ** path_hops
            survival = (procedure_success_probability(local,
                                                      per_link_loss)
                        * procedure_success_probability(crossing,
                                                        crossing_loss))
            needs_gateway = crossing > 0
            availability = survival * (reach if needs_gateway else 1.0)
            points.append(AvailabilityPoint(
                failure_fraction=fraction,
                solution=solution.name,
                reachability=reach if needs_gateway else 1.0,
                procedure_survival=survival,
                availability=availability,
            ))
    return points


def availability_gap(points: List[AvailabilityPoint]
                     ) -> Dict[float, float]:
    """SpaceCore's availability advantage at each failure level."""
    by_level: Dict[float, Dict[str, float]] = {}
    for point in points:
        by_level.setdefault(point.failure_fraction, {})[
            point.solution] = point.availability
    return {level: values["SpaceCore"] - values["5G NTN"]
            for level, values in by_level.items()}
