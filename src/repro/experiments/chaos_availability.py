"""Session survival under injected churn: the Fig. 13/14 story, live.

The offline availability sweep (:mod:`.availability`) multiplies
analytic survival probabilities; this experiment instead *runs* a
day-in-the-life segment on the event engine with a
:class:`~repro.faults.chaos.ChaosController` injecting satellite
deaths, Gilbert-Elliott link bursts, and a regional jamming window,
and measures what actually happens to established sessions:

* **SpaceCore**: every fault is survived by the real recovery path --
  RLF detection, NAS-timed retries, re-attach with the UE-held state
  replica on the best live satellite
  (:class:`~repro.core.robustness.ResilientSpaceCore`);
* **stateful baseline** (5G NTN-style): a serving-satellite death
  destroys the on-board context, so the UE must re-run the full
  home-routed registration + establishment -- which needs a live ISL
  path to a gateway and every message of the long flow to survive the
  (possibly jammed, possibly bursty) links.

Outputs are session-survival curves and recovery-latency samples for
both systems, JSON-serialisable for the report layer.  Runs are
bit-reproducible: the same seed yields an identical fault event log
and identical procedure outcome records.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..baselines.solutions import fiveg_ntn
from ..constants import (
    INMARSAT_REGISTRATION_DELAY_S,
    NAS_MAX_ATTEMPTS,
    NAS_RETRY_BACKOFF_BASE_S,
    NAS_RETRY_BACKOFF_CAP_S,
    NAS_T3510_S,
    RLF_DETECTION_S,
)
from ..core import ResilientSpaceCore, SpaceCoreSystem
from ..faults.chaos import ChaosController, FaultKind, FaultSchedule
from ..faults.failures import procedure_success_probability
from ..fiveg.messages import ProcedureKind
from ..hardware.model import RASPBERRY_PI_4
from ..hardware.queueing import procedure_latency
from ..orbits.constellation import Constellation, starlink
from ..runtime.parallel import get_shared, run_sharded, seed_for
from ..sim.engine import Simulator

#: Four radio messages of the localized Fig. 16a exchange at LEO
#: one-way latency: SpaceCore's re-attach cost once a live satellite
#: is selected.
SPACECORE_LOCAL_EXCHANGE_S = 4 * 0.0027


@dataclass(frozen=True)
class ChaosScenario:
    """Knobs of the default churn scenario (all seeded)."""

    horizon_s: float = 3600.0
    sample_interval_s: float = 120.0
    n_ues: int = 24
    #: Hazard compression so simulation-scale horizons see Fig. 13a
    #: scale churn; the default kills roughly half the targeted
    #: satellites over one hour.
    decay_acceleration: float = 5.0e5
    #: Failed satellites come back after this long (None = permanent).
    repair_delay_s: Optional[float] = 1500.0
    #: Regional jamming window over the UE cluster centroid.
    jam_start_s: float = 600.0
    jam_stop_s: float = 1500.0
    jam_radius_km: float = 1200.0
    #: Per-wireless-hop message loss for the stateful baseline's
    #: home-routed flows, outside and inside the jamming window.
    per_link_loss: float = 0.02
    jam_link_loss: float = 0.5
    #: ISL hops a home-routed message crosses to reach the gateway.
    path_hops: float = 6.0
    #: UE placement: (lat, lon) degree sites cycled over, jittered.
    #: None = the default hemisphere-ish spread below.
    ue_sites: Optional[Tuple[Tuple[float, float], ...]] = None
    ue_jitter_deg: float = 2.0
    #: Signaling arrival rate (procedures/s) the serving satellite's
    #: processor sees during recovery churn -- the load point at which
    #: COMPUTE_DEGRADE events stretch procedure latency (Fig. 8 made
    #: live on a derated platform).
    compute_load_per_s: float = 150.0
    seed: int = 0


@dataclass(frozen=True)
class PacketProbeSpec:
    """A bulk Algorithm 1 wave probed through the faulted topology.

    After the churn horizon drains, the probe routes a seeded packet
    wave over whatever the fault schedule left standing -- dead
    satellites and torn ISLs included -- through the batch routing
    plane (:class:`~repro.topology.batch_routing.BatchGeoRouter`).
    The wave is routed in ONE vectorized call, so even a large probe
    adds milliseconds to a trial, and the batch plane's bit-exact
    equivalence with the scalar walk keeps the artifact byte-stable
    whether or not the compiled kernel is available.
    """

    packets: int = 256
    #: Route epoch in simulated seconds; ``None`` probes at the
    #: scenario horizon (the post-churn end state).
    t_s: Optional[float] = None
    seed: int = 7

    def __post_init__(self):
        if self.packets < 1:
            raise ValueError("probe needs at least one packet")


def _run_packet_probe(system: SpaceCoreSystem, scenario: ChaosScenario,
                      probe: PacketProbeSpec) -> Dict:
    """Route the probe wave over the post-churn topology, summarised.

    Deterministic in (probe, scenario.seed); every float is rounded so
    the payload survives the golden-artifact byte contract.
    """
    import math

    import numpy as np

    from ..topology.batch_routing import BatchGeoRouter

    t = probe.t_s if probe.t_s is not None else scenario.horizon_s
    router = BatchGeoRouter(system.topology)
    constellation = system.topology.constellation
    rng = np.random.default_rng([probe.seed, scenario.seed])
    lat_band = math.radians(
        min(constellation.inclination_deg,
            180.0 - constellation.inclination_deg)) - 0.02
    src = rng.integers(0, constellation.total_satellites, probe.packets)
    lats = rng.uniform(-lat_band, lat_band, probe.packets)
    lons = rng.uniform(-math.pi, math.pi, probe.packets)
    result = router.route_batch(src, lats, lons, t)
    delivered = result.delivered
    n_ok = int(delivered.sum())
    return {
        "packets": probe.packets,
        "t_s": t,
        "delivered": n_ok,
        "degraded": int(result.degraded.sum()),
        "scalar_fallbacks": int(result.fallback.sum()),
        "mean_delay_ms": (round(float(
            result.delay_s[delivered].mean() * 1000.0), 9)
            if n_ok else None),
        "mean_hops": (round(float(result.hops[delivered].mean()), 9)
                      if n_ok else None),
    }


@dataclass
class SurvivalSample:
    """Fraction of initially-established sessions alive at ``t``."""

    t: float
    spacecore: float
    baseline: float


@dataclass
class ChaosAvailabilityResult:
    """Everything a chaos run produced, JSON-ready."""

    scenario: ChaosScenario
    fault_log: List[Tuple] = field(default_factory=list)
    samples: List[SurvivalSample] = field(default_factory=list)
    spacecore_outcomes: List[Tuple] = field(default_factory=list)
    spacecore_recovery_latencies: List[float] = field(default_factory=list)
    baseline_recovery_latencies: List[float] = field(default_factory=list)
    spacecore_lost: int = 0
    baseline_lost: int = 0
    n_sessions: int = 0
    #: Post-churn routability probe payload (None = no probe ran).
    packet_probe: Optional[Dict] = None

    @property
    def final_spacecore_survival(self) -> float:
        return self.samples[-1].spacecore if self.samples else 0.0

    @property
    def final_baseline_survival(self) -> float:
        return self.samples[-1].baseline if self.samples else 0.0

    def to_json(self) -> Dict:
        """The report-layer payload (both curves + latency samples).

        The ``packet_probe`` key appears only when a probe actually
        ran, so existing artifacts stay byte-identical.
        """
        payload = self._base_json()
        if self.packet_probe is not None:
            payload["packet_probe"] = self.packet_probe
        return payload

    def _base_json(self) -> Dict:
        return {
            "scenario": {
                "horizon_s": self.scenario.horizon_s,
                "n_ues": self.scenario.n_ues,
                "seed": self.scenario.seed,
                "jam_window_s": [self.scenario.jam_start_s,
                                 self.scenario.jam_stop_s],
            },
            "fault_log": [list(key) for key in self.fault_log],
            "curves": {
                "t_s": [s.t for s in self.samples],
                "spacecore_survival": [s.spacecore for s in self.samples],
                "baseline_survival": [s.baseline for s in self.samples],
            },
            "recovery_latency_s": {
                "spacecore": self.spacecore_recovery_latencies,
                "baseline": self.baseline_recovery_latencies,
            },
            "lost_sessions": {
                "spacecore": self.spacecore_lost,
                "baseline": self.baseline_lost,
            },
            "n_sessions": self.n_sessions,
            "spacecore_outcomes": [list(key)
                                   for key in self.spacecore_outcomes],
        }


#: A spread of terrestrial user locations (degrees) the scenario
#: samples from -- one hemisphere-ish cluster so a single jammer
#: plausibly covers a subset.
_UE_SITES = (
    (39.9, 116.4), (31.2, 121.5), (22.3, 114.2), (35.7, 139.7),
    (28.6, 77.2), (1.35, 103.8), (37.6, 127.0), (13.7, 100.5),
    (23.8, 90.4), (41.0, 28.9), (55.8, 37.6), (25.3, 51.5),
)


def _place_ues(system: SpaceCoreSystem, scenario: ChaosScenario):
    """Provision the scenario's subscribers around its sites, jittered."""
    rng = random.Random(scenario.seed)
    sites = scenario.ue_sites if scenario.ue_sites else _UE_SITES
    jitter = scenario.ue_jitter_deg
    ues = []
    for i in range(scenario.n_ues):
        lat, lon = sites[i % len(sites)]
        ues.append(system.provision_ue(lat + rng.uniform(-jitter, jitter),
                                       lon + rng.uniform(-jitter, jitter)))
    return ues


# ---------------------------------------------------------------------------
# Compute-degradation latency coupling (hardware model made live)
# ---------------------------------------------------------------------------

_PENALTY_FLOW_CACHE: Dict[str, Tuple[list, frozenset]] = {}


def _penalty_flow(system_kind: str) -> Tuple[list, frozenset]:
    """(flow, on-board roles) whose processing a derating stretches."""
    cached = _PENALTY_FLOW_CACHE.get(system_kind)
    if cached is None:
        from ..baselines.solutions import spacecore
        if system_kind == "spacecore":
            solution = spacecore()
            flow = solution.flow(ProcedureKind.SESSION_ESTABLISHMENT)
        else:
            solution = fiveg_ntn()
            flow = (solution.flow(ProcedureKind.INITIAL_REGISTRATION)
                    + solution.flow(ProcedureKind.SESSION_ESTABLISHMENT))
        cached = (flow, solution.on_board)
        _PENALTY_FLOW_CACHE[system_kind] = cached
    return cached


def compute_degradation_penalty_s(system_kind: str, factor: float,
                                  rate_per_s: float) -> float:
    """Extra procedure latency a derated onboard processor adds.

    The penalty is the difference between the M/M/1 procedure latency
    (:func:`~repro.hardware.queueing.procedure_latency`) on the rated
    Hardware-1 platform and on the same platform derated to ``factor``
    of its capacity, at the scenario's recovery signaling load.  At
    full capacity the penalty is exactly zero, so runs without
    ``COMPUTE_DEGRADE`` events are byte-identical to the pre-scenario
    behaviour.
    """
    if factor >= 1.0:
        return 0.0
    flow, on_board = _penalty_flow(system_kind)
    base = procedure_latency(RASPBERRY_PI_4, rate_per_s, flow,
                             on_board).total_s
    degraded = procedure_latency(RASPBERRY_PI_4.derated(factor),
                                 rate_per_s, flow, on_board).total_s
    return max(0.0, degraded - base)


class _StatefulBaseline:
    """A 5G NTN-style core under the same fault schedule.

    Serving-satellite state is authoritative on board, so a satellite
    death forces the full home-routed C1+C2 re-run: it succeeds only
    if (a) the new serving satellite still reaches a gateway over live
    ISLs and (b) every crossing message of the long flow survives the
    per-hop loss -- jammed windows push that loss up.  Retries follow
    the same NAS discipline as SpaceCore for a fair comparison.
    """

    def __init__(self, system: SpaceCoreSystem, scenario: ChaosScenario,
                 controller: ChaosController):
        self.system = system
        self.scenario = scenario
        self.controller = controller
        self.rng = random.Random(scenario.seed + 101)
        solution = fiveg_ntn()
        flow = solution.flow(ProcedureKind.SESSION_ESTABLISHMENT)
        reg = solution.flow(ProcedureKind.INITIAL_REGISTRATION)
        self.crossing_messages = (solution.crossing_messages(flow)
                                  + solution.crossing_messages(reg))
        self.local_messages = (len(flow) + len(reg)
                               - self.crossing_messages)
        self.assignments: Dict[str, int] = {}
        self.alive: Dict[str, bool] = {}
        self.recovery_latencies: List[float] = []
        self.lost = 0

    def establish_all(self, ues, t: float) -> None:
        for ue in ues:
            sat = self.system.live_serving_satellite_of(ue, t)
            supi = str(ue.supi)
            self.assignments[supi] = sat
            self.alive[supi] = sat >= 0

    # -- fault reaction ----------------------------------------------------------

    def on_fault(self, event) -> None:
        if event.kind is not FaultKind.SAT_FAIL:
            return
        dead = event.target[0]
        victims = [supi for supi, sat in self.assignments.items()
                   if sat == dead and self.alive.get(supi)]
        if not victims:
            return
        t = self.controller.sim.now + RLF_DETECTION_S
        for supi in victims:
            self._reattach(supi, t)

    def _crossing_loss(self) -> float:
        per_hop = (self.scenario.jam_link_loss
                   if self.controller.jamming_active()
                   else self.scenario.per_link_loss)
        return 1.0 - (1.0 - per_hop) ** self.scenario.path_hops

    def _gateway_reachable(self, sat: int, t: float) -> bool:
        if sat < 0:
            return False
        topology = self.system.topology
        graph = topology.snapshot_graph(t, include_ground=False)
        if sat not in graph:
            return False
        sources = set()
        for _, gs in topology.live_ground_stations():
            access = topology.station_access_satellite(gs, t)
            if access >= 0:
                sources.add(access)
        return any(nx.has_path(graph, sat, source)
                   for source in sources if source in graph)

    def _reattach(self, supi: str, t: float) -> None:
        """NAS-timed retries of the full home-routed procedure."""
        elapsed = 0.0
        for attempt in range(NAS_MAX_ATTEMPTS):
            now = t + elapsed
            sat = self._serving_at(supi, now)
            survival = (
                procedure_success_probability(self.local_messages,
                                              self.scenario.per_link_loss)
                * procedure_success_probability(self.crossing_messages,
                                                self._crossing_loss()))
            if (self._gateway_reachable(sat, now)
                    and self.rng.random() < survival):
                self.assignments[supi] = sat
                self.recovery_latencies.append(
                    RLF_DETECTION_S + elapsed
                    + INMARSAT_REGISTRATION_DELAY_S
                    + compute_degradation_penalty_s(
                        "baseline", self.controller.min_compute_factor(),
                        self.scenario.compute_load_per_s))
                return
            backoff = min(NAS_RETRY_BACKOFF_BASE_S * (2.0 ** attempt),
                          NAS_RETRY_BACKOFF_CAP_S)
            elapsed += NAS_T3510_S + backoff
        self.alive[supi] = False
        self.assignments.pop(supi, None)
        self.lost += 1

    def _serving_at(self, supi: str, t: float) -> int:
        ue = self._ue_by_supi.get(supi)
        if ue is None:
            return -1
        return self.system.live_serving_satellite_of(ue, t)

    def bind_ues(self, ues) -> None:
        self._ue_by_supi = {str(ue.supi): ue for ue in ues}

    def alive_fraction(self) -> float:
        if not self.alive:
            return 0.0
        live = 0
        for supi, is_alive in self.alive.items():
            sat = self.assignments.get(supi)
            if (is_alive and sat is not None and sat >= 0
                    and self.system.topology.is_up(sat)):
                live += 1
        return live / len(self.alive)


def serving_blast_radius(system: SpaceCoreSystem, ues) -> Tuple[set, set]:
    """(serving satellites, serving + grid neighbours) of a population."""
    serving = {sat for sat in
               (system.live_serving_satellite_of(ue, 0.0) for ue in ues)
               if sat >= 0}
    blast_radius = set(serving)
    for sat in serving:
        blast_radius.update(system.topology.directional_neighbors(
            sat).values())
    return serving, blast_radius


def default_chaos_schedule(system: SpaceCoreSystem, ues,
                           scenario: ChaosScenario) -> FaultSchedule:
    """The stock churn mix: blast-radius decay + bursts + jamming.

    The scenario catalog (:mod:`repro.scenarios`) swaps this builder
    for scenario-specific compositions via the ``schedule_builder``
    hook of :func:`run_chaos_availability`.
    """
    serving, blast_radius = serving_blast_radius(system, ues)
    schedule = FaultSchedule()
    schedule.add_satellite_decay(
        sorted(blast_radius), scenario.horizon_s,
        acceleration=scenario.decay_acceleration,
        repair_delay_s=scenario.repair_delay_s, seed=scenario.seed)
    links = {frozenset((sat, nbr)) for sat in serving
             for nbr in system.topology.directional_neighbors(
                 sat).values()}
    schedule.add_link_bursts(
        [tuple(sorted(link)) for link in sorted(links, key=sorted)],
        scenario.horizon_s, seed=scenario.seed + 1)
    if (scenario.jam_radius_km > 0
            and scenario.jam_stop_s > scenario.jam_start_s):
        ue_lats = [ue.lat for ue in ues]
        ue_lons = [ue.lon for ue in ues]
        from ..faults.attacks import JammingAttack
        jammer = JammingAttack(
            sum(ue_lats) / len(ue_lats),
            sum(ue_lons) / len(ue_lons),
            radius_km=scenario.jam_radius_km)
        schedule.add_jamming_window(jammer, scenario.jam_start_s,
                                    scenario.jam_stop_s)
    return schedule


def run_chaos_availability(
        constellation: Optional[Constellation] = None,
        scenario: Optional[ChaosScenario] = None,
        metrics=None, tracer=None,
        schedule_builder=None,
        packet_probe: Optional[PacketProbeSpec] = None,
        ) -> ChaosAvailabilityResult:
    """One seeded churn run: SpaceCore vs the stateful baseline.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) and
    ``tracer`` (a :class:`~repro.obs.tracing.Tracer`, which gets the
    simulator's clock injected) instrument the run without changing
    its behaviour: the engine, chaos controller and recovery machinery
    all share the same sinks.  ``schedule_builder`` --
    ``(system, ues, scenario) -> FaultSchedule`` -- replaces the
    default churn mix (:func:`default_chaos_schedule`) with a
    scenario-specific fault composition.  ``packet_probe`` routes a
    seeded bulk wave through whatever topology the churn left behind
    (see :class:`PacketProbeSpec`); it runs after the horizon drains
    and its router keeps its own metrics out of ``metrics`` so probed
    and unprobed runs share identical metric registries.
    """
    scenario = scenario if scenario is not None else ChaosScenario()
    system = SpaceCoreSystem(constellation
                             if constellation is not None else starlink())
    sim = Simulator()
    if metrics is not None:
        sim.attach_metrics(metrics)
    if tracer is not None:
        tracer.set_clock(lambda: sim.now)
    controller = ChaosController(sim, system.topology, metrics=metrics,
                                 tracer=tracer)
    resilient = ResilientSpaceCore(system, metrics=metrics,
                                   tracer=tracer)
    baseline = _StatefulBaseline(system, scenario, controller)

    # -- population + initial attach at t=0 -------------------------------------
    ues = _place_ues(system, scenario)
    for ue in ues:
        resilient.register(ue, 0.0)
        resilient.establish_session(ue, 0.0)
    baseline.bind_ues(ues)
    baseline.establish_all(ues, 0.0)

    # -- fault schedule -----------------------------------------------------------
    if schedule_builder is None:
        schedule = default_chaos_schedule(system, ues, scenario)
    else:
        schedule = schedule_builder(system, ues, scenario)

    resilient.attach_chaos(controller)
    controller.subscribe(baseline.on_fault)
    controller.arm(schedule)

    # -- survival sampling --------------------------------------------------------
    result = ChaosAvailabilityResult(scenario, n_sessions=len(ues))

    def sample() -> None:
        alive = sum(1 for ue in ues if resilient.session_alive(ue))
        result.samples.append(SurvivalSample(
            sim.now, alive / len(ues), baseline.alive_fraction()))

    steps = int(scenario.horizon_s / scenario.sample_interval_s)
    for k in range(steps + 1):
        sim.schedule_at(k * scenario.sample_interval_s, sample)

    sim.run(until=scenario.horizon_s)

    # -- harvest ------------------------------------------------------------------
    result.fault_log = controller.log_keys()
    result.spacecore_outcomes = resilient.outcome_keys()
    result.spacecore_recovery_latencies = [
        RLF_DETECTION_S + o.total_delay_s + SPACECORE_LOCAL_EXCHANGE_S
        + compute_degradation_penalty_s(
            "spacecore",
            controller.compute_factor_at(o.started_at + o.total_delay_s),
            scenario.compute_load_per_s)
        for o in resilient.outcomes
        if o.procedure == "recovery" and o.completed]
    result.baseline_recovery_latencies = baseline.recovery_latencies
    result.spacecore_lost = len(resilient.lost_sessions)
    result.baseline_lost = baseline.lost
    if packet_probe is not None:
        result.packet_probe = _run_packet_probe(system, scenario,
                                                packet_probe)
    return result


def write_chaos_report(path: str,
                       result: ChaosAvailabilityResult) -> None:
    """Emit the JSON artifact the report layer consumes."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_json(), fh, indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# Sharded Monte Carlo over seeds
# ---------------------------------------------------------------------------

def _chaos_trial(work) -> Dict:
    """One Monte Carlo shard: a fully seeded churn run, JSON payload.

    Module-level so worker processes can unpickle it; returns plain
    dicts so the parent never needs live simulator objects back.  The
    scenario and constellation ship once per worker via the shared
    registry, so a task pickles two integers, not a topology.
    """
    trial, base_seed = work
    scenario = get_shared("chaos:scenario")
    constellation = get_shared("chaos:constellation")
    trial_scenario = replace(
        scenario, seed=seed_for(base_seed, f"chaos-trial:{trial}"))
    result = run_chaos_availability(constellation=constellation,
                                    scenario=trial_scenario)
    payload = result.to_json()
    payload["trial"] = trial
    return payload


@dataclass
class ChaosMonteCarlo:
    """Per-trial payloads plus the aggregate survival summary.

    The JSON form contains nothing about the execution medium (worker
    count, timing), so ``--workers 1`` and ``--workers N`` artifacts
    compare bit-for-bit.
    """

    base_seed: int
    trials: List[Dict] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def _finals(self, system: str) -> List[float]:
        return [t["curves"][f"{system}_survival"][-1]
                for t in self.trials if t["curves"][f"{system}_survival"]]

    def summary(self) -> Dict:
        """Across-trial aggregates of the survival story."""
        sc, base = self._finals("spacecore"), self._finals("baseline")
        return {
            "n_trials": self.n_trials,
            "spacecore_mean_survival": sum(sc) / len(sc) if sc else 0.0,
            "spacecore_min_survival": min(sc) if sc else 0.0,
            "baseline_mean_survival": (sum(base) / len(base)
                                       if base else 0.0),
            "baseline_min_survival": min(base) if base else 0.0,
            "spacecore_lost": sum(t["lost_sessions"]["spacecore"]
                                  for t in self.trials),
            "baseline_lost": sum(t["lost_sessions"]["baseline"]
                                 for t in self.trials),
            "faults_injected": sum(len(t["fault_log"])
                                   for t in self.trials),
        }

    def to_json(self) -> Dict:
        """The Monte Carlo artifact: base seed, summary, every trial."""
        return {
            "base_seed": self.base_seed,
            "summary": self.summary(),
            "trials": self.trials,
        }


def run_chaos_trials(n_trials: int = 8, base_seed: int = 0,
                     scenario: Optional[ChaosScenario] = None,
                     constellation: Optional[Constellation] = None,
                     workers: Optional[int] = None) -> ChaosMonteCarlo:
    """Monte Carlo churn: ``n_trials`` independent seeded runs.

    Trial ``k`` runs the scenario with seed
    ``seed_for(base_seed, "chaos-trial:k")`` -- derivation happens
    identically whether the trials execute serially or sharded across
    a process pool, and results are assembled by trial index, so the
    artifact is bit-identical for any worker count.
    """
    if n_trials < 1:
        raise ValueError("need at least one trial")
    scenario = scenario if scenario is not None else ChaosScenario()
    work = [(trial, base_seed) for trial in range(n_trials)]
    return ChaosMonteCarlo(
        base_seed=base_seed,
        trials=run_sharded(_chaos_trial, work, workers=workers,
                           shared={"chaos:scenario": scenario,
                                   "chaos:constellation": constellation},
                           label="chaos.monte_carlo"))


def write_monte_carlo_report(path: str, result: ChaosMonteCarlo) -> None:
    """Emit the Monte Carlo JSON artifact (bit-stable across workers)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_json(), fh, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    """Stand-alone entry point: run the default scenario, write JSON."""
    import argparse
    parser = argparse.ArgumentParser(
        description="chaos availability: session survival under churn")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ues", type=int, default=24)
    parser.add_argument("--horizon", type=float, default=3600.0)
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", default="CHAOS_availability.json")
    args = parser.parse_args(argv)
    scenario = ChaosScenario(seed=args.seed, n_ues=args.ues,
                             horizon_s=args.horizon)
    if args.trials > 1:
        mc = run_chaos_trials(n_trials=args.trials, base_seed=args.seed,
                              scenario=scenario, workers=args.workers)
        write_monte_carlo_report(args.output, mc)
        summary = mc.summary()
        print(f"monte carlo: {args.trials} trials, "
              f"{summary['faults_injected']} faults injected")
        print(f"mean survival: SpaceCore "
              f"{summary['spacecore_mean_survival']:.3f} vs baseline "
              f"{summary['baseline_mean_survival']:.3f}")
        print(f"wrote {args.output}")
        return 0
    result = run_chaos_availability(scenario=scenario)
    write_chaos_report(args.output, result)
    print(f"faults injected: {len(result.fault_log)}")
    print(f"final survival: SpaceCore "
          f"{result.final_spacecore_survival:.3f} vs baseline "
          f"{result.final_baseline_survival:.3f}")
    print(f"lost sessions: SpaceCore {result.spacecore_lost}, "
          f"baseline {result.baseline_lost}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
