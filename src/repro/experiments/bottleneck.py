"""Space-terrestrial asymmetry bottlenecks (Fig. 5, S2.2).

Two demonstrations with the transparent-pipe (bent-pipe) architecture:

* **gateway concentration** (Fig. 5a): few ground stations terminate
  the traffic of many satellites, so the busiest gateway carries a
  large multiple of the mean;
* **registration latency** (Fig. 5b): replayed Inmarsat/Tiantong
  registrations take ~9.5/13.5 s through remote gateways -- orders of
  magnitude above 5G's <10 ms baseband deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..constants import BASEBAND_DEADLINE_S
from ..orbits.constellation import Constellation
from ..orbits.groundstations import (
    GroundStation,
    default_ground_stations,
    station_load_shares,
)
from ..orbits.propagator import IdealPropagator
from ..workload.traces import registration_delay_samples


@dataclass(frozen=True)
class GatewayConcentration:
    """Fig. 5a: how unevenly satellites map onto gateways."""

    constellation: str
    num_gateways: int
    max_satellites: int
    mean_satellites: float

    @property
    def concentration_factor(self) -> float:
        return (self.max_satellites / self.mean_satellites
                if self.mean_satellites else 0.0)


def gateway_concentration(constellation: Constellation,
                          stations: Optional[Sequence[GroundStation]] = None,
                          t: float = 0.0) -> GatewayConcentration:
    """Compute the Fig. 5a satellite-per-gateway concentration."""
    stations = (list(stations) if stations is not None
                else default_ground_stations())
    propagator = IdealPropagator(constellation)
    subpoints = [tuple(row) for row in propagator.subpoints(t)]
    shares = station_load_shares(subpoints, stations)
    return GatewayConcentration(
        constellation=constellation.name,
        num_gateways=len(stations),
        max_satellites=max(shares),
        mean_satellites=sum(shares) / len(shares),
    )


def registration_delay_cdf(source: str, samples: int = 500,
                           seed: int = 0) -> List[Tuple[float, float]]:
    """The Fig. 5b CDF: (delay_s, cumulative fraction) points."""
    delays = sorted(registration_delay_samples(source, samples, seed))
    return [(delay, (i + 1) / len(delays))
            for i, delay in enumerate(delays)]


def deadline_violation_factor(source: str, samples: int = 500) -> float:
    """How many times over the 5G baseband deadline the median sits."""
    cdf = registration_delay_cdf(source, samples)
    median = cdf[len(cdf) // 2][0]
    return median / BASEBAND_DEADLINE_S
