"""Experiment harness: one module per table/figure of the evaluation.

See DESIGN.md's experiment index for the mapping from paper artifacts
(Tables 1-4, Figures 5-21) to these modules and their benchmarks.
"""

from .availability import (
    AvailabilityPoint,
    availability_gap,
    availability_sweep,
    gateway_reachability,
)
from .bottleneck import (
    GatewayConcentration,
    deadline_violation_factor,
    gateway_concentration,
    registration_delay_cdf,
)
from .chaos_availability import (
    ChaosAvailabilityResult,
    ChaosMonteCarlo,
    ChaosScenario,
    SurvivalSample,
    run_chaos_availability,
    run_chaos_trials,
    write_chaos_report,
    write_monte_carlo_report,
)
from .cpu import (
    FIG7_RATES,
    FIG8_RATES,
    LatencyPoint,
    fig7_cpu_breakdown,
    fig7_saturation_rate,
    fig8_latency_sweep,
)
from .leakage import LeakageStudy, fig19_study, final_hijack_leaks
from .moving_areas import (
    ServiceAreaChurn,
    fig11_comparison,
    geospatial_area_churn,
    logical_area_churn,
)
from .observability import (
    chaos_observability,
    cohort_observability,
    write_metrics_snapshot,
    write_trace_jsonl,
)
from .prototype import (
    FIG17_RATES,
    PrototypePoint,
    fig17_sweep,
    session_latency_comparison,
    solution_cpu_percent,
    solution_latency_s,
)
from .relay import (
    RelayComparison,
    RelaySweepStats,
    RelayTrial,
    compare_ideal_vs_j4,
    path_stretch_vs_optimal,
    relay_router,
    relay_sweep_stats,
    relay_times,
    relay_trials,
)
from .report import generate_report, write_report
from .sensitivity import (
    ScalingPoint,
    SensitivityPoint,
    by_parameter,
    constellation_scaling,
    sensitivity_sweep,
    worst_case_reduction,
)
from .signaling import (
    ACTIVE_SATELLITE_FRACTION,
    SignalingLoad,
    cohort_load_point,
    mean_hops_to_ground,
    reduction_factors,
    signaling_load,
    sweep,
)
from .temporal import (
    TemporalSample,
    load_variation,
    satellite_ground_track_load,
)
from .state_footprint import (
    StateFootprint,
    durable_vs_ephemeral,
    footprint_comparison,
    satellite_state_footprint,
)
from .userlevel import (
    StallResult,
    fig21_comparison,
    satellite_pass_impact,
    stall_summary,
    tcp_recovery_time_s,
)

__all__ = [
    "AvailabilityPoint", "availability_gap", "availability_sweep",
    "gateway_reachability",
    "GatewayConcentration", "deadline_violation_factor",
    "gateway_concentration", "registration_delay_cdf",
    "ChaosAvailabilityResult", "ChaosMonteCarlo", "ChaosScenario",
    "SurvivalSample", "run_chaos_availability", "run_chaos_trials",
    "write_chaos_report", "write_monte_carlo_report",
    "FIG7_RATES", "FIG8_RATES", "LatencyPoint", "fig7_cpu_breakdown",
    "fig7_saturation_rate", "fig8_latency_sweep",
    "LeakageStudy", "fig19_study", "final_hijack_leaks",
    "FIG17_RATES", "PrototypePoint", "fig17_sweep",
    "session_latency_comparison", "solution_cpu_percent",
    "solution_latency_s",
    "RelayComparison", "RelaySweepStats", "RelayTrial",
    "compare_ideal_vs_j4", "path_stretch_vs_optimal", "relay_router",
    "relay_sweep_stats", "relay_times", "relay_trials",
    "ACTIVE_SATELLITE_FRACTION", "SignalingLoad", "cohort_load_point",
    "mean_hops_to_ground", "reduction_factors", "signaling_load", "sweep",
    "TemporalSample", "load_variation", "satellite_ground_track_load",
    "StallResult", "fig21_comparison", "satellite_pass_impact",
    "stall_summary", "tcp_recovery_time_s",
    "chaos_observability", "cohort_observability",
    "write_metrics_snapshot", "write_trace_jsonl",
    "generate_report", "write_report",
    "ServiceAreaChurn", "fig11_comparison", "geospatial_area_churn",
    "logical_area_churn",
    "ScalingPoint", "SensitivityPoint", "by_parameter",
    "constellation_scaling", "sensitivity_sweep",
    "worst_case_reduction",
    "StateFootprint", "durable_vs_ephemeral", "footprint_comparison",
    "satellite_state_footprint",
]
