"""CPU usage breakdown by core function (Fig. 7) and latency (Fig. 8).

Fig. 7 puts the full in-orbit function set (Option 3/4) on each of the
two satellite platforms and sweeps the initial/mobility registration
rate from 10 to 250 per second, reporting per-NF stacked CPU
utilisation.  Fig. 8 sweeps the same rates and reports the queueing
latency of registrations and session establishments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..baselines.options import option4_all_functions
from ..fiveg.messages import (
    INITIAL_REGISTRATION_FLOW,
    MOBILITY_REGISTRATION_FLOW,
    SESSION_ESTABLISHMENT_FLOW,
)
from ..hardware.model import (
    CpuBreakdown,
    HardwarePlatform,
    PLATFORMS,
    cpu_breakdown,
)
from ..hardware.queueing import LatencyEstimate, procedure_latency
from ..runtime.parallel import get_shared, run_sharded

#: Fig. 7's x-axis.
FIG7_RATES: Tuple[int, ...] = (10, 20, 30, 40, 50, 70, 100, 150, 200, 250)

#: Fig. 8's x-axis.
FIG8_RATES: Tuple[int, ...] = (10, 50, 100, 200, 300, 400, 500)

#: Registrations replayed in Fig. 7 mix initial and mobility runs.
_REGISTRATION_FLOW = (INITIAL_REGISTRATION_FLOW
                      + MOBILITY_REGISTRATION_FLOW)


def _fig7_point(rate) -> CpuBreakdown:
    """One registration-rate point of the Fig. 7 curve, shardable."""
    platform = get_shared("fig7:platform")
    option = option4_all_functions()
    half_each = [m for m in INITIAL_REGISTRATION_FLOW] + \
        [m for m in MOBILITY_REGISTRATION_FLOW]
    return cpu_breakdown(platform, rate / 2.0, half_each,
                         option.on_board)


def fig7_cpu_breakdown(platform: HardwarePlatform,
                       rates: Sequence[int] = FIG7_RATES,
                       workers: Optional[int] = None
                       ) -> List[CpuBreakdown]:
    """Per-NF CPU utilisation at each registration rate (Fig. 7)."""
    return run_sharded(_fig7_point, list(rates), workers=workers,
                       shared={"fig7:platform": platform},
                       label="cpu.fig7")


def fig7_saturation_rate(platform: HardwarePlatform,
                         max_rate: int = 2000) -> int:
    """The registration rate at which the platform saturates."""
    option = option4_all_functions()
    for rate in range(10, max_rate + 1, 10):
        breakdown = cpu_breakdown(platform, rate / 2.0,
                                  _REGISTRATION_FLOW, option.on_board)
        if breakdown.saturated:
            return rate
    return max_rate


@dataclass(frozen=True)
class LatencyPoint:
    """One Fig. 8 sample."""

    platform: str
    rate_per_s: int
    registration: LatencyEstimate
    session: LatencyEstimate


def _fig8_point(work) -> LatencyPoint:
    """One (platform, rate) latency sample, shardable."""
    from ..baselines.options import option3_session_mobility
    platform_index, rate, ground_rtt_s = work
    platform = get_shared("fig8:platforms")[platform_index]
    option = option3_session_mobility()
    # Fig. 8a replays initial *and* mobility registrations.
    registration = procedure_latency(
        platform, rate, _REGISTRATION_FLOW,
        option.on_board, ground_rtt_s)
    session = procedure_latency(
        platform, rate, SESSION_ESTABLISHMENT_FLOW,
        option.on_board, ground_rtt_s)
    return LatencyPoint(platform.name, rate, registration, session)


def fig8_latency_sweep(ground_rtt_s: float = 0.030,
                       rates: Sequence[int] = FIG8_RATES,
                       workers: Optional[int] = None
                       ) -> List[LatencyPoint]:
    """Signaling latency vs load on both platforms (Fig. 8).

    Uses the Option 3 placement (Baoyun-like, matching the prototype)
    with the home a ~30 ms round trip away.  (platform, rate) points
    shard across workers in the serial walk's order.
    """
    platforms = tuple(PLATFORMS)
    return run_sharded(_fig8_point,
                       [(platform_index, rate, ground_rtt_s)
                        for platform_index in range(len(platforms))
                        for rate in rates],
                       workers=workers,
                       shared={"fig8:platforms": platforms},
                       label="cpu.fig8")
