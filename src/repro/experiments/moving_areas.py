"""Moving service areas (Fig. 11): the root cause, quantified.

Legacy designs bind the service area to the serving node, so a
*static* UE's tracking area changes every satellite pass.  SpaceCore's
geospatial areas are frozen at t=0.  This module counts, over an
observation window, how many distinct service areas a static UE
traverses under each definition -- Fig. 11's cartoon as a measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..geo.cells import GeospatialCellGrid
from ..orbits.constellation import Constellation
from ..orbits.propagator import IdealPropagator
from ..orbits.snapshot import sample_times, serving_over_times


@dataclass(frozen=True)
class ServiceAreaChurn:
    """Service-area changes seen by one static UE."""

    definition: str
    distinct_areas: int
    area_changes: int
    changes_per_hour: float


def logical_area_churn(constellation: Constellation, lat_deg: float,
                       lon_deg: float, duration_s: float = 3600.0,
                       step_s: float = 20.0) -> ServiceAreaChurn:
    """Churn when the tracking area is the serving satellite's."""
    propagator = IdealPropagator(constellation)
    lat, lon = math.radians(lat_deg), math.radians(lon_deg)
    # The whole serving-satellite timeline comes from one vectorised
    # time-grid sweep; only the churn bookkeeping stays in Python.
    servers = serving_over_times(
        propagator, sample_times(0.0, duration_s, step_s), lat, lon)
    seen = set()
    changes = 0
    current: Optional[int] = None
    for sat in servers:
        sat = int(sat)
        if sat >= 0:
            seen.add(sat)
            if current is not None and sat != current:
                changes += 1
            current = sat
    return ServiceAreaChurn("logical (satellite-bound)", len(seen),
                            changes, changes * 3600.0 / duration_s)


def geospatial_area_churn(constellation: Constellation, lat_deg: float,
                          lon_deg: float,
                          duration_s: float = 3600.0,
                          step_s: float = 20.0) -> ServiceAreaChurn:
    """Churn under SpaceCore's frozen geospatial cells: zero, always."""
    grid = GeospatialCellGrid(constellation)
    lat, lon = math.radians(lat_deg), math.radians(lon_deg)
    seen = set()
    changes = 0
    current: Optional[Tuple[int, int]] = None
    t = 0.0
    while t <= duration_s:
        cell = grid.cell_of(lat, lon)
        seen.add(cell)
        if current is not None and cell != current:
            changes += 1
        current = cell
        t += step_s
    return ServiceAreaChurn("geospatial (SpaceCore)", len(seen),
                            changes, changes * 3600.0 / duration_s)


def fig11_comparison(constellation: Constellation,
                     lat_deg: float = 39.9, lon_deg: float = 116.4,
                     duration_s: float = 3600.0
                     ) -> List[ServiceAreaChurn]:
    """Both definitions, side by side, for one static UE."""
    return [
        logical_area_churn(constellation, lat_deg, lon_deg,
                           duration_s),
        geospatial_area_churn(constellation, lat_deg, lon_deg,
                              duration_s),
    ]
