"""Per-satellite state footprint: what each design stores on board.

The flip side of Fig. 19: the states a satellite *stores* are both its
attack surface and its memory bill.  SkyCore pre-provisions every
subscriber's security context; Baoyun/DPCM hold the footprint's active
contexts; SpaceCore holds only ephemeral serving-session state that
evaporates on release.

Sizes come from the real serialized objects (the S1-S5 bundle and the
authentication vector), not guesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..baselines.base import ACTIVE_FRACTION, Solution, StateResidency
from ..baselines.solutions import ALL_SOLUTIONS
from ..fiveg.aka import generate_vector
from ..fiveg.state import (
    IdentifierState,
    LocationState,
    SessionState,
)

#: Serialized size of one S1-S5 session bundle (measured).
_BUNDLE_BYTES = len(SessionState(
    identifiers=IdentifierState("imsi-460000000000001", 1, 1000,
                                "guti-460000-1-00000000"),
    location=LocationState((0, 0), (0, 0), "2001:db8::1"),
).to_bytes())

#: Serialized size of one authentication vector (measured).
_VECTOR_BYTES = len(generate_vector(b"k" * 32, "5G:460000",
                                    rand=b"r" * 16).serialize())

#: Radio-layer context per connected UE (AS keys + bearer config).
_RADIO_CONTEXT_BYTES = 256


@dataclass(frozen=True)
class StateFootprint:
    """On-board state inventory for one design point."""

    solution: str
    stored_items: float
    stored_bytes: float

    @property
    def stored_megabytes(self) -> float:
        return self.stored_bytes / 1e6


def satellite_state_footprint(solution: Solution, capacity: int,
                              total_subscribers: int) -> StateFootprint:
    """What one satellite holds at steady state."""
    residency = solution.state_residency
    if residency is StateResidency.ALL_SUBSCRIBERS:
        items = float(total_subscribers)
        size = items * (_BUNDLE_BYTES + _VECTOR_BYTES)
    elif residency is StateResidency.ACTIVE_CONTEXTS:
        items = float(capacity)
        size = items * _BUNDLE_BYTES
    elif residency is StateResidency.RELAY_ONLY:
        items = capacity * ACTIVE_FRACTION
        size = items * _RADIO_CONTEXT_BYTES
    else:  # StateResidency.NONE -- SpaceCore
        items = capacity * ACTIVE_FRACTION
        size = items * (_BUNDLE_BYTES + _RADIO_CONTEXT_BYTES)
    return StateFootprint(solution.name, items, size)


def footprint_comparison(capacity: int = 30_000,
                         total_subscribers: int = 100_000_000
                         ) -> List[StateFootprint]:
    """All five solutions' on-board state bills."""
    return [satellite_state_footprint(factory(), capacity,
                                      total_subscribers)
            for factory in ALL_SOLUTIONS]


def durable_vs_ephemeral(capacity: int = 30_000,
                         total_subscribers: int = 100_000_000
                         ) -> Dict[str, str]:
    """Classify each design's storage as durable or ephemeral.

    Durable state survives the radio session and is what a hijacker
    harvests; ephemeral state evaporates on release.
    """
    classes = {}
    for factory in ALL_SOLUTIONS:
        solution = factory()
        if solution.state_residency is StateResidency.NONE:
            classes[solution.name] = "ephemeral"
        else:
            classes[solution.name] = "durable"
    return classes
