"""User-level performance in satellite mobility (Fig. 21).

What does a satellite pass do to a live TCP transfer and a ping
stream between Beijing and New York?

* SkyCore/Baoyun/DPCM re-allocate the UE's logical IP during the
  mobility registration, which **terminates** TCP connections and
  breaks ping until the application reconnects;
* 5G NTN keeps the IP (anchored at the remote home) but stalls for
  the whole slow home-routed signaling exchange;
* SpaceCore keeps the geospatial address and only pays the short local
  handover -- no termination, minimal stall.

Stalls exceed the raw signaling time because of higher-layer recovery:
TCP sits in exponential-backoff retransmission (RTO) and resumes only
at the first retransmission after connectivity returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..baselines.base import Solution
from ..baselines.solutions import ALL_SOLUTIONS
from ..fiveg.messages import ProcedureKind
from .prototype import solution_latency_s

#: TCP's initial retransmission timeout (s).
TCP_INITIAL_RTO_S = 0.2

#: Ping probing interval (s).
PING_INTERVAL_S = 0.1

#: Time to rebuild a torn-down connection: new session establishment
#: plus transport handshake, from the application's point of view.
RECONNECT_OVERHEAD_S = 1.5


def tcp_recovery_time_s(outage_s: float,
                        initial_rto_s: float = TCP_INITIAL_RTO_S) -> float:
    """Stall from outage start to the first successful retransmission.

    Retransmissions fire at exponentially backed-off instants (0.2,
    0.6, 1.4, 3.0, ... seconds after the loss); the transfer resumes at
    the first instant past the outage end.
    """
    if outage_s < 0:
        raise ValueError("outage cannot be negative")
    fire_at = 0.0
    rto = initial_rto_s
    while True:
        fire_at += rto
        if fire_at >= outage_s:
            return fire_at
        rto = min(rto * 2.0, 60.0)


@dataclass(frozen=True)
class StallResult:
    """Per-solution user-level outcome of one satellite pass."""

    solution: str
    connection_reset: bool
    outage_s: float
    tcp_stall_s: float
    ping_stall_s: float


def satellite_pass_impact(solution: Solution,
                          rate_per_s: int = 100) -> StallResult:
    """Fig. 21a for one solution.

    The outage window is the mobility signaling the solution runs on a
    pass: the mobility registration (logical designs) or the local
    handover (SpaceCore).
    """
    if solution.mobility_registration_per_pass:
        kind = ProcedureKind.MOBILITY_REGISTRATION
    else:
        kind = ProcedureKind.HANDOVER
    outage, _ = solution_latency_s(solution, kind, rate_per_s)
    if solution.name != "SpaceCore":
        # Legacy designs re-establish the data session on the new
        # satellite after the pass (the Fig. 21c trace: handover, then
        # session est. request, then recovery).  SpaceCore's replica
        # piggyback *is* the session install, so nothing is added.
        session_est, _ = solution_latency_s(
            solution, ProcedureKind.SESSION_ESTABLISHMENT, rate_per_s)
        outage += session_est
    reset = not solution.ip_stable_under_satellite_mobility
    if reset:
        # The transport connection dies with the address; the stall is
        # the outage plus a full application-level reconnect.
        tcp = outage + RECONNECT_OVERHEAD_S
        ping = outage + RECONNECT_OVERHEAD_S
    else:
        tcp = tcp_recovery_time_s(outage)
        ping = outage + PING_INTERVAL_S
    return StallResult(solution.name, reset, outage, tcp, ping)


def fig21_comparison(rate_per_s: int = 100) -> List[StallResult]:
    """All five solutions' user-level stalls (Fig. 21a)."""
    return [satellite_pass_impact(factory(), rate_per_s)
            for factory in ALL_SOLUTIONS]


def stall_summary(results: List[StallResult]) -> Dict[str, Dict[str, float]]:
    """Per-solution stall metrics as a plain nested dict."""
    return {r.solution: {"tcp": r.tcp_stall_s, "ping": r.ping_stall_s,
                         "reset": float(r.connection_reset)}
            for r in results}
