"""Sensitivity analysis: does the Table 4 conclusion survive the model?

The signaling-reduction factors rest on calibrated parameters -- mean
ISL hops to a gateway, the number of gateways, the active-UE fraction,
the satellite capacity.  A reviewer's first question is whether the
headline ("SpaceCore reduces satellite signaling by an order of
magnitude or more") is an artifact of one parameter choice.  This
module perturbs each parameter across a wide range and reports the
worst-case reduction factor observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.solutions import fiveg_ntn, spacecore
from ..orbits.constellation import Constellation
from ..orbits.groundstations import default_ground_stations
from ..runtime.parallel import get_shared, run_sharded
from .signaling import signaling_load


@dataclass(frozen=True)
class SensitivityPoint:
    """One parameter perturbation and the resulting reduction."""

    parameter: str
    value: float
    reduction_vs_ntn: float


def _reduction(constellation: Constellation, capacity: int,
               stations, hops: float) -> float:
    sc = signaling_load(spacecore(), constellation, capacity, stations,
                        hops)
    ntn = signaling_load(fiveg_ntn(), constellation, capacity,
                         stations, hops)
    return (ntn.satellite_hotspot_per_s
            / sc.satellite_hotspot_per_s)


def _sensitivity_cell(work) -> SensitivityPoint:
    """One grid cell of the perturbation sweep, shardable.

    The constellation and every station-set variant ship through the
    shared registry once per worker; the cell carries only scalars and
    the key of the station set it perturbs.
    """
    parameter, value, capacity, stations_key, hops = work
    constellation = get_shared("sensitivity:constellation")
    stations = get_shared("sensitivity:stations")[stations_key]
    return SensitivityPoint(
        parameter, value,
        _reduction(constellation, capacity, list(stations), hops))


def sensitivity_sweep(constellation: Constellation,
                      base_capacity: int = 30_000,
                      workers: Optional[int] = None
                      ) -> List[SensitivityPoint]:
    """Perturb hops, gateway count, and capacity one at a time.

    Each perturbation cell is independent, so the grid shards across
    workers (planner permitting); cell order (and every value) matches
    the serial walk.
    """
    station_sets: Dict[str, Tuple] = {
        "base": tuple(default_ground_stations()),
    }
    cells = []
    for hops in (2.0, 5.0, 10.0, 20.0):
        cells.append(("mean_hops", hops, base_capacity, "base", hops))
    for gateway_count in (4, 8, 16, 26):
        key = f"gateways:{gateway_count}"
        station_sets[key] = tuple(default_ground_stations(gateway_count))
        cells.append(("gateways", float(gateway_count), base_capacity,
                      key, 5.0))
    for capacity in (2_000, 10_000, 20_000, 30_000):
        cells.append(("capacity", float(capacity), capacity, "base",
                      5.0))
    return run_sharded(
        _sensitivity_cell, cells, workers=workers,
        shared={"sensitivity:constellation": constellation,
                "sensitivity:stations": station_sets},
        label="sensitivity.grid")


def worst_case_reduction(points: Sequence[SensitivityPoint]) -> float:
    """The minimum reduction across every perturbation."""
    return min(p.reduction_vs_ntn for p in points)


def by_parameter(points: Sequence[SensitivityPoint]
                 ) -> Dict[str, List[SensitivityPoint]]:
    """Group sensitivity points by the perturbed parameter."""
    grouped: Dict[str, List[SensitivityPoint]] = {}
    for point in points:
        grouped.setdefault(point.parameter, []).append(point)
    return grouped


# ---------------------------------------------------------------------------
# Constellation-size scaling
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScalingPoint:
    """Reduction factor for one synthetic shell size."""

    total_satellites: int
    reduction_vs_ntn: float


def _scaling_cell(work) -> ScalingPoint:
    """One synthetic shell of the scaling curve, shardable.

    The shell's gateway-hop Dijkstra is the expensive part; it runs in
    the worker against the shard-local memo.
    """
    from .signaling import mean_hops_to_ground
    planes, slots, altitude_km, inclination_deg, capacity = work
    stations = get_shared("scaling:stations")
    shell = Constellation("scaling", slots, planes, altitude_km,
                          inclination_deg, min_elevation_deg=32.0)
    hops = mean_hops_to_ground(shell, list(stations))
    return ScalingPoint(shell.total_satellites,
                        _reduction(shell, capacity, list(stations), hops))


def constellation_scaling(sizes: Sequence[Tuple[int, int]] = (
        (6, 11), (18, 20), (36, 20), (72, 22)),
        altitude_km: float = 550.0,
        inclination_deg: float = 53.0,
        capacity: int = 30_000,
        workers: Optional[int] = None) -> List[ScalingPoint]:
    """SpaceCore's advantage vs shell size (synthetic Walker shells).

    The paper's trend: the denser the constellation, the harsher the
    stateful storm -- and the larger SpaceCore's win.  Shells shard
    across workers; each worker builds its own shell topology once.
    """
    stations = tuple(default_ground_stations())
    cells = [(planes, slots, altitude_km, inclination_deg, capacity)
             for planes, slots in sizes]
    return run_sharded(_scaling_cell, cells, workers=workers,
                       shared={"scaling:stations": stations},
                       label="sensitivity.scaling")
