"""Algebraic substrate: a Schnorr group and a prime field.

All public-key machinery in SpaceCore (Algorithm 2's Diffie-Hellman,
the home's state signatures, the ABE secret sharing) runs over two
deterministic structures:

* ``SCHNORR_GROUP``: a 512-bit safe-prime group (p = 2q + 1) with a
  generator of prime order q.  512 bits keeps the pure-Python modular
  exponentiation fast enough for the latency micro-benchmarks while
  preserving the real protocol structure.  The constants were produced
  once by a seeded Miller-Rabin search (seed 20220822, the paper's
  conference date) and are fixed here.
* ``SHARE_FIELD``: the prime field F_q over the Mersenne prime
  2^521 - 1, used for Shamir secret sharing in the ABE scheme.

This is a *reproduction-grade* parameterisation: the algebra and the
protocol flows are real, the key sizes are scaled for simulation.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

#: 512-bit safe prime p = 2q + 1.
_P = int(
    "0x8388e403a7ff7aa89fb163fb9197d703770381138e3e00acc26922bb0636cc5b"
    "2231676e54ee6e18a118b26ee875b9dcd37382fdf22d336c9c80185fb6af9cd3", 16)
#: The 511-bit prime group order q = (p - 1) / 2.
_Q = int(
    "0x41c47201d3ffbd544fd8b1fdc8cbeb81bb81c089c71f00566134915d831b662d"
    "9118b3b72a77370c508c5937743adcee69b9c17ef91699b64e400c2fdb57ce69", 16)
_G = 4


@dataclass(frozen=True)
class SchnorrGroup:
    """A multiplicative group of prime order q inside Z_p^*."""

    p: int
    q: int
    g: int

    def random_scalar(self, rng=None) -> int:
        """A uniform nonzero exponent modulo q."""
        if rng is not None:
            return rng.randrange(1, self.q)
        return secrets.randbelow(self.q - 1) + 1

    def power(self, base: int, exponent: int) -> int:
        """``base ** exponent mod p``."""
        return pow(base, exponent, self.p)

    def generate(self, exponent: int) -> int:
        """g^exponent mod p."""
        return pow(self.g, exponent, self.p)

    def is_element(self, x: int) -> bool:
        """Membership test for the order-q subgroup."""
        return 0 < x < self.p and pow(x, self.q, self.p) == 1

    def hash_to_scalar(self, *parts: bytes) -> int:
        """Hash arbitrary byte strings into an exponent (Fiat-Shamir)."""
        digest = hashlib.sha512()
        for part in parts:
            digest.update(len(part).to_bytes(8, "big"))
            digest.update(part)
        return int.from_bytes(digest.digest(), "big") % self.q

    def element_bytes(self, x: int) -> bytes:
        """Fixed-width big-endian encoding of a group element."""
        return x.to_bytes((self.p.bit_length() + 7) // 8, "big")


SCHNORR_GROUP = SchnorrGroup(p=_P, q=_Q, g=_G)


def is_probable_prime(n: int, rounds: int = 40,
                      rng=None) -> bool:
    """Miller-Rabin primality test (deterministic enough at 40 rounds).

    Used by the test suite to verify the hard-coded group constants;
    exposed because downstream users regenerating parameters need it.
    """
    import random as _random
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    rng = rng or _random.Random(0xC0FFEE)
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True

#: Mersenne prime 2^127 - 1: the Shamir share field for ABE.  A 127-bit
#: field keeps Lagrange interpolation in the tens of microseconds --
#: the Fig. 18a regime -- while preserving the scheme's structure.
SHARE_PRIME = (1 << 127) - 1


class ShareField:
    """Arithmetic helpers over F_(2^127 - 1)."""

    prime = SHARE_PRIME

    @classmethod
    def random(cls, rng=None) -> int:
        if rng is not None:
            return rng.randrange(cls.prime)
        return secrets.randbelow(cls.prime)

    @classmethod
    def add(cls, a: int, b: int) -> int:
        return (a + b) % cls.prime

    @classmethod
    def mul(cls, a: int, b: int) -> int:
        return (a * b) % cls.prime

    @classmethod
    def inv(cls, a: int) -> int:
        if a % cls.prime == 0:
            raise ZeroDivisionError("no inverse of zero")
        return pow(a, cls.prime - 2, cls.prime)

    @classmethod
    def eval_poly(cls, coefficients, x: int) -> int:
        """Horner evaluation of a polynomial with ``coefficients[0]``
        the constant term."""
        acc = 0
        for coeff in reversed(coefficients):
            acc = (acc * x + coeff) % cls.prime
        return acc

    @classmethod
    def lagrange_at_zero(cls, points) -> int:
        """Interpolate ``points = [(x, y), ...]`` and evaluate at 0."""
        total = 0
        for i, (xi, yi) in enumerate(points):
            num, den = 1, 1
            for j, (xj, _) in enumerate(points):
                if i == j:
                    continue
                num = num * (-xj) % cls.prime
                den = den * (xi - xj) % cls.prime
            total = (total + yi * num * cls.inv(den)) % cls.prime
        return total
