"""Access-tree policies for attribute-based encryption (S4.4).

The home network expresses who may decrypt a UE's delegated states as
a Boolean formula over attributes, e.g. the paper's example::

    A(S) = (S is UE and S.SUPI == UE.SUPI)
           or (S is satellite and S supports QoS and S.bandwidth >= 10Gbps)

We model policies as threshold trees: leaves name attributes; internal
nodes are k-of-n gates (AND = n-of-n, OR = 1-of-n).  The same tree
drives both the Boolean satisfaction check and the Shamir share layout
inside the ABE ciphertext.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Set, Union


@dataclass(frozen=True)
class Leaf:
    """A single required attribute, e.g. ``"role:satellite"``."""

    attribute: str

    def satisfies(self, attributes: FrozenSet[str]) -> bool:
        """Whether the attribute set meets this node."""
        return self.attribute in attributes

    def leaves(self) -> List["Leaf"]:
        """All attribute leaves under this node."""
        return [self]

    def describe(self) -> str:
        """Human-readable rendering of the (sub)policy."""
        return self.attribute


@dataclass(frozen=True)
class Gate:
    """A k-of-n threshold gate over child policies."""

    threshold: int
    children: tuple

    def __post_init__(self) -> None:
        if not self.children:
            raise ValueError("gate needs at least one child")
        if not 1 <= self.threshold <= len(self.children):
            raise ValueError(
                f"threshold {self.threshold} out of range for "
                f"{len(self.children)} children")

    def satisfies(self, attributes: FrozenSet[str]) -> bool:
        """Whether the attribute set meets this node."""
        hits = sum(child.satisfies(attributes) for child in self.children)
        return hits >= self.threshold

    def leaves(self) -> List[Leaf]:
        """All attribute leaves under this node."""
        found: List[Leaf] = []
        for child in self.children:
            found.extend(child.leaves())
        return found

    def describe(self) -> str:
        """Human-readable rendering of the (sub)policy."""
        inner = ", ".join(child.describe() for child in self.children)
        if self.threshold == len(self.children):
            return f"AND({inner})"
        if self.threshold == 1:
            return f"OR({inner})"
        return f"{self.threshold}-of-{len(self.children)}({inner})"


PolicyNode = Union[Leaf, Gate]


def attr(name: str) -> Leaf:
    """A leaf requiring ``name``."""
    return Leaf(name)


def and_(*children: PolicyNode) -> Gate:
    """All children must be satisfied."""
    return Gate(len(children), tuple(children))


def or_(*children: PolicyNode) -> Gate:
    """Any child suffices."""
    return Gate(1, tuple(children))


def k_of(k: int, *children: PolicyNode) -> Gate:
    """At least ``k`` children must be satisfied."""
    return Gate(k, tuple(children))


def satisfies(policy: PolicyNode, attributes: Iterable[str]) -> bool:
    """Whether an attribute set satisfies a policy tree."""
    return policy.satisfies(frozenset(attributes))


def policy_attributes(policy: PolicyNode) -> Set[str]:
    """All attribute names mentioned by the policy."""
    return {leaf.attribute for leaf in policy.leaves()}


def policy_to_json(policy: PolicyNode):
    """JSON-compatible encoding of a policy tree (wire format)."""
    if isinstance(policy, Leaf):
        return {"attr": policy.attribute}
    return {"k": policy.threshold,
            "children": [policy_to_json(child)
                         for child in policy.children]}


def policy_from_json(data) -> PolicyNode:
    """Inverse of :func:`policy_to_json`."""
    if "attr" in data:
        return Leaf(data["attr"])
    children = tuple(policy_from_json(child)
                     for child in data["children"])
    return Gate(data["k"], children)


def serving_satellite_policy(min_bandwidth_gbps: int = 10) -> Gate:
    """The paper's S4.4 example policy for a UE's delegated states.

    Either the UE itself (matching SUPI) or a QoS-capable satellite
    with sufficient bandwidth may open the states.
    """
    return or_(
        and_(attr("role:ue"), attr("supi:self")),
        and_(attr("role:satellite"), attr("cap:qos"),
             attr(f"bandwidth>={min_bandwidth_gbps}gbps")),
    )
