"""Station-to-station key agreement (Algorithm 2, lines 9-14).

After the UE hands its encrypted state replica to a serving satellite,
the two run an authenticated Diffie-Hellman to derive a per-session key
K.  The paper bases this on the station-to-station protocol [127]:
ephemeral DH plus signatures over both exponentials, which defeats
man-in-the-middle relays (Appendix B).  A fresh K per session
establishment gives the forward secrecy the paper claims ("updates
this security key for every session establishment").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

from .group import SCHNORR_GROUP, SchnorrGroup
from .signatures import Certificate, SigningKey, VerifyKey


class KeyAgreementError(Exception):
    """Raised when authentication fails during the exchange."""


@dataclass(frozen=True)
class InitiatorHello:
    """UE -> satellite: ``X = g^x`` (line 10), plus the state blob id."""

    exponential: int


@dataclass(frozen=True)
class ResponderReply:
    """Satellite -> UE: ``Y``, its certificate, and a signature over
    (Y, X) proving possession of the certified key (line 13)."""

    exponential: int
    certificate: Certificate
    signature: Tuple[int, int]


@dataclass
class SessionKey:
    """The agreed key K plus transcript metadata."""

    key: bytes
    initiator_exponential: int
    responder_exponential: int


def _kdf(shared: int, x_pub: int, y_pub: int,
         group: SchnorrGroup) -> bytes:
    material = b"|".join((b"sts", group.element_bytes(shared),
                          group.element_bytes(x_pub),
                          group.element_bytes(y_pub)))
    return hashlib.sha256(material).digest()


def _transcript(x_pub: int, y_pub: int, group: SchnorrGroup) -> bytes:
    return b"|".join((b"sts-transcript", group.element_bytes(y_pub),
                      group.element_bytes(x_pub)))


class Initiator:
    """The UE side of Algorithm 2."""

    def __init__(self, home_verify_key: VerifyKey,
                 group: SchnorrGroup = SCHNORR_GROUP, rng=None):
        self.group = group
        self.home_verify_key = home_verify_key
        self._x = group.random_scalar(rng)
        self.hello = InitiatorHello(group.generate(self._x))

    def finish(self, reply: ResponderReply) -> SessionKey:
        """Verify the satellite and derive K (line 14).

        Checks, in order: the certificate chains to the home; the
        signature covers both exponentials; the exponential is a valid
        group element.  Any failure aborts -- the UE then rolls back to
        the legacy home-routed procedure.
        """
        if not reply.certificate.verify(self.home_verify_key):
            raise KeyAgreementError("satellite certificate not from home")
        transcript = _transcript(self.hello.exponential, reply.exponential,
                                 self.group)
        if not reply.certificate.public_key.verify(transcript,
                                                   reply.signature):
            raise KeyAgreementError("satellite signature invalid")
        if not self.group.is_element(reply.exponential):
            raise KeyAgreementError("responder exponential not in group")
        shared = self.group.power(reply.exponential, self._x)
        return SessionKey(_kdf(shared, self.hello.exponential,
                               reply.exponential, self.group),
                          self.hello.exponential, reply.exponential)


class Responder:
    """The satellite side of Algorithm 2."""

    def __init__(self, certificate: Certificate, signing_key: SigningKey,
                 group: SchnorrGroup = SCHNORR_GROUP, rng=None):
        self.group = group
        self.certificate = certificate
        self._signing_key = signing_key
        self._rng = rng

    def respond(self, hello: InitiatorHello
                ) -> Tuple[ResponderReply, SessionKey]:
        """Lines 12-13: compute Y, K, and the authenticating signature."""
        if not self.group.is_element(hello.exponential):
            raise KeyAgreementError("initiator exponential not in group")
        y = self.group.random_scalar(self._rng)
        y_pub = self.group.generate(y)
        shared = self.group.power(hello.exponential, y)
        transcript = _transcript(hello.exponential, y_pub, self.group)
        reply = ResponderReply(y_pub, self.certificate,
                               self._signing_key.sign(transcript))
        key = SessionKey(_kdf(shared, hello.exponential, y_pub, self.group),
                         hello.exponential, y_pub)
        return reply, key


def agree(home_verify_key: VerifyKey, certificate: Certificate,
          satellite_key: SigningKey, rng=None
          ) -> Tuple[SessionKey, SessionKey]:
    """Run the whole exchange in-process (for tests and benchmarks)."""
    ue = Initiator(home_verify_key, rng=rng)
    sat = Responder(certificate, satellite_key, rng=rng)
    reply, sat_session = sat.respond(ue.hello)
    ue_session = ue.finish(reply)
    return ue_session, sat_session
