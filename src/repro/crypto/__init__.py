"""Cryptographic substrate for home-controlled state updates (S4.4).

From-scratch implementations of the three primitives Algorithm 2
needs: ciphertext-policy ABE over access trees, Schnorr signatures and
certificates, and station-to-station Diffie-Hellman key agreement.
"""

from .abe import (
    AbeCiphertext,
    AbeDecryptionError,
    AbeError,
    AbeMasterKey,
    AbePrivateKey,
    AbePublicParams,
    can_decrypt,
    decrypt,
    encrypt,
    keygen,
    setup,
)
from .access_tree import (
    Gate,
    Leaf,
    and_,
    attr,
    k_of,
    or_,
    policy_attributes,
    satisfies,
    serving_satellite_policy,
)
from .group import SCHNORR_GROUP, SchnorrGroup, ShareField
from .signatures import (
    Certificate,
    SigningKey,
    VerifyKey,
    generate_keypair,
    issue_certificate,
)
from .sts import (
    Initiator,
    KeyAgreementError,
    Responder,
    SessionKey,
    agree,
)

__all__ = [
    "AbeCiphertext", "AbeDecryptionError", "AbeError", "AbeMasterKey",
    "AbePrivateKey", "AbePublicParams", "can_decrypt", "decrypt", "encrypt",
    "keygen", "setup",
    "Gate", "Leaf", "and_", "attr", "k_of", "or_", "policy_attributes",
    "satisfies", "serving_satellite_policy",
    "SCHNORR_GROUP", "SchnorrGroup", "ShareField",
    "Certificate", "SigningKey", "VerifyKey", "generate_keypair",
    "issue_certificate",
    "Initiator", "KeyAgreementError", "Responder", "SessionKey", "agree",
]
