"""Ciphertext-policy attribute-based encryption (S4.4).

The home network encrypts a UE's delegated session states under an
access tree A; a satellite (or the UE) can decrypt if and only if its
attribute set satisfies A.  The paper uses OpenABE; we implement the
same *functional contract* from scratch:

* the policy is a threshold access tree (see ``access_tree``);
* the payload key is a Shamir secret shared down the tree, one share
  per leaf, each share wrapped under a per-attribute key;
* decryption recovers leaf shares for attributes the decryptor holds
  and reconstructs the secret bottom-up with Lagrange interpolation --
  possible exactly when the tree is satisfied;
* cost is linear in the number of attributes/leaves, which is the
  property Fig. 18a measures.

Per-attribute keys are derived from the master secret with a PRF
(HMAC-SHA256), so *encryption requires the master secret*.  In
SpaceCore only the home ever encrypts states (S4.4: "local state
updates by UEs or satellites are prohibited"), so the restriction
matches the deployment; a pairing-based construction would lift it
without changing any caller.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .access_tree import Gate, Leaf, PolicyNode
from .group import ShareField

_SHARE_BYTES = 16  # 127-bit field elements fit in 16 bytes


class AbeError(Exception):
    """Base class for ABE failures."""


class AbeDecryptionError(AbeError):
    """Raised when the attribute set does not satisfy the policy (or
    the ciphertext was tampered with)."""


@dataclass(frozen=True)
class AbeMasterKey:
    """The home's master secret (never leaves the home)."""

    secret: bytes

    def attribute_key(self, attribute: str) -> bytes:
        """PRF-derived symmetric key for one attribute."""
        return hmac.new(self.secret, b"attr|" + attribute.encode(),
                        hashlib.sha256).digest()


@dataclass(frozen=True)
class AbePublicParams:
    """Public parameters; identifies the authority."""

    authority_id: bytes


@dataclass(frozen=True)
class AbePrivateKey:
    """A decryptor's key: one wrapped key per attribute it holds."""

    attributes: FrozenSet[str]
    attribute_keys: Dict[str, bytes]

    def __post_init__(self) -> None:
        if set(self.attribute_keys) != set(self.attributes):
            raise ValueError("attribute keys must cover the attribute set")


@dataclass(frozen=True)
class AbeCiphertext:
    """An encrypted blob gated by an access tree."""

    policy: PolicyNode
    nonce: bytes
    wrapped_shares: Tuple[Tuple[int, str, bytes], ...]
    payload: bytes
    tag: bytes

    def size_bytes(self) -> int:
        """Approximate wire size (drives piggyback overhead accounting)."""
        share_bytes = sum(len(w) + len(a) + 4
                          for _, a, w in self.wrapped_shares)
        return len(self.nonce) + share_bytes + len(self.payload) + len(
            self.tag)

    def to_bytes(self) -> bytes:
        """Wire encoding: what the UE actually stores and piggybacks."""
        import json
        from .access_tree import policy_to_json
        document = {
            "policy": policy_to_json(self.policy),
            "nonce": self.nonce.hex(),
            "shares": [[index, attribute, wrapped.hex()]
                       for index, attribute, wrapped
                       in self.wrapped_shares],
            "payload": self.payload.hex(),
            "tag": self.tag.hex(),
        }
        return json.dumps(document, sort_keys=True,
                          separators=(",", ":")).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "AbeCiphertext":
        import json
        from .access_tree import policy_from_json
        document = json.loads(data.decode())
        return cls(
            policy=policy_from_json(document["policy"]),
            nonce=bytes.fromhex(document["nonce"]),
            wrapped_shares=tuple(
                (index, attribute, bytes.fromhex(wrapped))
                for index, attribute, wrapped in document["shares"]),
            payload=bytes.fromhex(document["payload"]),
            tag=bytes.fromhex(document["tag"]),
        )


def setup(rng_seed: Optional[bytes] = None
          ) -> Tuple[AbePublicParams, AbeMasterKey]:
    """Algorithm 2 line 2: ``(pk, msk) <- Setup(1^lambda)``."""
    secret = rng_seed if rng_seed is not None else secrets.token_bytes(32)
    authority = hashlib.sha256(b"authority|" + secret).digest()[:16]
    return AbePublicParams(authority), AbeMasterKey(secret)


def keygen(msk: AbeMasterKey,
           attributes: Iterable[str]) -> AbePrivateKey:
    """Algorithm 2 lines 3-4: derive a key for an attribute set."""
    attrs = frozenset(attributes)
    if not attrs:
        raise ValueError("a private key needs at least one attribute")
    return AbePrivateKey(attrs,
                         {a: msk.attribute_key(a) for a in attrs})


# ---------------------------------------------------------------------------
# Share plumbing
# ---------------------------------------------------------------------------

def _keystream(key: bytes, context: bytes, length: int) -> bytes:
    """A SHA-512 counter-mode keystream."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha512(key + context
                               + counter.to_bytes(4, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def _xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


def _distribute(node: PolicyNode, share: int, leaf_counter: List[int],
                out: List[Tuple[int, str, int]]) -> None:
    """Recursive Shamir share distribution down the access tree."""
    if isinstance(node, Leaf):
        index = leaf_counter[0]
        leaf_counter[0] += 1
        out.append((index, node.attribute, share))
        return
    assert isinstance(node, Gate)
    # Polynomial of degree threshold-1 with constant term = share.
    coefficients = [share] + [ShareField.random()
                              for _ in range(node.threshold - 1)]
    for child_pos, child in enumerate(node.children, start=1):
        child_share = ShareField.eval_poly(coefficients, child_pos)
        _distribute(child, child_share, leaf_counter, out)


def _recover(node: PolicyNode, leaf_shares: Dict[int, int],
             leaf_counter: List[int]):
    """Bottom-up reconstruction; returns the node share or None."""
    if isinstance(node, Leaf):
        index = leaf_counter[0]
        leaf_counter[0] += 1
        return leaf_shares.get(index)
    assert isinstance(node, Gate)
    recovered: List[Tuple[int, int]] = []
    for child_pos, child in enumerate(node.children, start=1):
        value = _recover(child, leaf_shares, leaf_counter)
        if value is not None:
            recovered.append((child_pos, value))
    if len(recovered) < node.threshold:
        return None
    return ShareField.lagrange_at_zero(recovered[:node.threshold])


# ---------------------------------------------------------------------------
# Encrypt / decrypt
# ---------------------------------------------------------------------------

def encrypt(msk: AbeMasterKey, plaintext: bytes,
            policy: PolicyNode) -> AbeCiphertext:
    """Algorithm 2 line 7: ``msg <- Encrypt(pk, state, A)``."""
    secret = ShareField.random()
    nonce = secrets.token_bytes(16)
    shares: List[Tuple[int, str, int]] = []
    _distribute(policy, secret, [0], shares)

    wrapped: List[Tuple[int, str, bytes]] = []
    for index, attribute, share in shares:
        attr_key = msk.attribute_key(attribute)
        context = nonce + index.to_bytes(4, "big")
        stream = _keystream(attr_key, context, _SHARE_BYTES)
        wrapped.append((index, attribute,
                        _xor(share.to_bytes(_SHARE_BYTES, "big"), stream)))

    payload_key = hashlib.sha256(
        secret.to_bytes(_SHARE_BYTES, "big") + nonce).digest()
    payload = _xor(plaintext, _keystream(payload_key, b"payload",
                                         len(plaintext)))
    tag = hmac.new(payload_key, nonce + payload, hashlib.sha256).digest()
    return AbeCiphertext(policy, nonce, tuple(wrapped), payload, tag)


def decrypt(key: AbePrivateKey, ciphertext: AbeCiphertext) -> bytes:
    """Algorithm 2 lines 8/11: succeeds iff ``A(S) = true``."""
    leaf_shares: Dict[int, int] = {}
    for index, attribute, wrapped in ciphertext.wrapped_shares:
        attr_key = key.attribute_keys.get(attribute)
        if attr_key is None:
            continue
        context = ciphertext.nonce + index.to_bytes(4, "big")
        stream = _keystream(attr_key, context, _SHARE_BYTES)
        leaf_shares[index] = int.from_bytes(_xor(wrapped, stream), "big")

    secret = _recover(ciphertext.policy, leaf_shares, [0])
    if secret is None:
        raise AbeDecryptionError(
            "attribute set does not satisfy the access policy")
    payload_key = hashlib.sha256(
        secret.to_bytes(_SHARE_BYTES, "big") + ciphertext.nonce).digest()
    expected = hmac.new(payload_key, ciphertext.nonce + ciphertext.payload,
                        hashlib.sha256).digest()
    if not hmac.compare_digest(expected, ciphertext.tag):
        raise AbeDecryptionError("integrity check failed")
    return _xor(ciphertext.payload,
                _keystream(payload_key, b"payload", len(ciphertext.payload)))


def can_decrypt(key: AbePrivateKey, ciphertext: AbeCiphertext) -> bool:
    """Policy check without touching the payload."""
    return ciphertext.policy.satisfies(key.attributes)
