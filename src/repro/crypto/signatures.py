"""Schnorr signatures: home-signed states and satellite certificates.

S4.4/Appendix B: states delegated to UEs are signed by the home so
neither UEs nor satellites can forge or modify them, and satellites
carry home-issued certificates (``CERT_sat`` in Algorithm 2) that UEs
verify during local key agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .group import SCHNORR_GROUP, SchnorrGroup


@dataclass(frozen=True)
class SigningKey:
    """A Schnorr private key."""

    x: int
    group: SchnorrGroup = SCHNORR_GROUP

    @property
    def public(self) -> "VerifyKey":
        return VerifyKey(self.group.generate(self.x), self.group)

    def sign(self, message: bytes) -> Tuple[int, int]:
        """Produce a (challenge, response) Schnorr signature."""
        k = self.group.random_scalar()
        r = self.group.generate(k)
        e = self.group.hash_to_scalar(self.group.element_bytes(r), message)
        s = (k + self.x * e) % self.group.q
        return e, s


@dataclass(frozen=True)
class VerifyKey:
    """A Schnorr public key."""

    y: int
    group: SchnorrGroup = SCHNORR_GROUP

    def verify(self, message: bytes, signature: Tuple[int, int]) -> bool:
        """Check a Schnorr signature over ``message``."""
        e, s = signature
        if not (0 <= e < self.group.q and 0 <= s < self.group.q):
            return False
        # g^s = r * y^e  =>  r = g^s * y^(-e)
        gs = self.group.generate(s)
        ye = self.group.power(self.y, e)
        r = gs * pow(ye, self.group.p - 2, self.group.p) % self.group.p
        expected = self.group.hash_to_scalar(self.group.element_bytes(r),
                                             message)
        return expected == e


def generate_keypair(rng=None) -> Tuple[SigningKey, VerifyKey]:
    """A fresh Schnorr keypair."""
    x = SCHNORR_GROUP.random_scalar(rng)
    sk = SigningKey(x)
    return sk, sk.public


@dataclass(frozen=True)
class Certificate:
    """A home-signed binding of an identity to a public key.

    ``CERT_sat`` in Algorithm 2: installed on satellites before launch,
    verified by UEs during the local key agreement (line 14).
    """

    subject: str
    public_key: VerifyKey
    issuer: str
    signature: Tuple[int, int]

    def message(self) -> bytes:
        """The canonical bytes the issuer signed."""
        return certificate_message(self.subject, self.public_key,
                                   self.issuer)

    def verify(self, issuer_key: VerifyKey) -> bool:
        """Check a Schnorr signature over ``message``."""
        return issuer_key.verify(self.message(), self.signature)


def certificate_message(subject: str, public_key: VerifyKey,
                        issuer: str) -> bytes:
    """Canonical byte encoding of a certificate body."""
    return b"|".join((b"cert", subject.encode(), issuer.encode(),
                      SCHNORR_GROUP.element_bytes(public_key.y)))


def issue_certificate(issuer_name: str, issuer_key: SigningKey,
                      subject: str, subject_key: VerifyKey) -> Certificate:
    """The home issues a certificate for a satellite (or itself)."""
    message = certificate_message(subject, subject_key, issuer_name)
    return Certificate(subject, subject_key, issuer_name,
                       issuer_key.sign(message))
