"""Satellite hardware CPU cost model (Fig. 7).

The paper prototypes on two platforms:

* **Hardware 1** -- Raspberry Pi 4, as flown on the Baoyun 5G LEO
  satellite [22-24];
* **Hardware 2** -- a Xeon E5-2630 workstation comparable to the HPE
  EL8000 class used by OrbitsEdge [28, 81].

We model per-message processing costs per network function, calibrated
so Hardware 1 saturates around 250 registrations/s with the full
in-orbit function set -- the Fig. 7a saturation point -- and Hardware 2
runs roughly six times faster (open5gs does not scale linearly with
cores).  Crypto-heavy functions (AUSF/UDM) cost more per message than
forwarding-rule updates (UPF).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from ..fiveg.messages import MessageTemplate, Role

#: Relative per-message weight of each NF (dimensionless).
_ROLE_WEIGHTS: Dict[Role, float] = {
    Role.UE: 0.0,          # not satellite CPU
    Role.RAN: 0.8,
    Role.RAN2: 0.8,
    Role.AMF: 1.0,
    Role.SMF: 1.0,
    Role.UPF: 0.7,
    Role.ANCHOR_UPF: 0.7,
    Role.AUSF: 2.0,        # key derivations
    Role.UDM: 1.6,         # database + vector generation
    Role.PCF: 0.9,
}

#: Per-message overhead attributed to "Others" in Fig. 7 (transport,
#: SBI serialisation, logging), as a fraction of the NF cost.
_OTHERS_FRACTION = 0.35

#: Fixed database access cost charged to stateful context lookups.
_DB_WEIGHT = 0.5


@dataclass(frozen=True)
class HardwarePlatform:
    """One satellite compute platform."""

    name: str
    base_cost_us: float   # cost of a weight-1.0 message (microseconds)
    cores: int = 1

    def derated(self, capacity_factor: float) -> "HardwarePlatform":
        """This platform throttled to ``capacity_factor`` of its compute.

        Models onboard degradation (radiation upsets, thermal
        throttling, a failed board): every message costs
        ``1 / capacity_factor`` times as much CPU, so the signaling
        processor saturates at proportionally lower load.  Chaos
        ``COMPUTE_DEGRADE`` events carry the factor; the scenario layer
        feeds it back through here.
        """
        if not 0.0 < capacity_factor <= 1.0:
            raise ValueError("capacity factor must be in (0, 1]")
        if capacity_factor == 1.0:
            return self
        return HardwarePlatform(
            f"{self.name}@{capacity_factor:g}",
            base_cost_us=self.base_cost_us / capacity_factor,
            cores=self.cores)

    def message_cost_s(self, processing_role: Role) -> float:
        """CPU seconds to process one message at the given NF."""
        weight = _ROLE_WEIGHTS.get(processing_role, 1.0)
        return weight * self.base_cost_us * 1e-6

    def procedure_cost_s(self, flow: Iterable[MessageTemplate],
                         on_board: Iterable[Role]) -> float:
        """CPU seconds one procedure instance burns on this platform.

        Each message is charged at its *destination* NF (the processor)
        when that NF runs on board, plus the Others overhead and a DB
        touch for stateful context messages.
        """
        on_board_set = set(on_board)
        total = 0.0
        for message in flow:
            if message.dst in on_board_set:
                cost = self.message_cost_s(message.dst)
                total += cost * (1.0 + _OTHERS_FRACTION)
                if message.carries or message.creates:
                    total += _DB_WEIGHT * self.base_cost_us * 1e-6
        return total


#: Hardware 1: Raspberry Pi 4 (Baoyun).  ~280 us per weight-1 message;
#: open5gs pipelines at most ~2 cores' worth of signaling work, which
#: puts saturation near 250-350 full registrations/s (Fig. 7a).
RASPBERRY_PI_4 = HardwarePlatform("hardware-1-rpi4", base_cost_us=280.0,
                                  cores=2)

#: Hardware 2: Xeon E5-2630 class (OrbitsEdge EL8000 analogue).
XEON_WORKSTATION = HardwarePlatform("hardware-2-xeon", base_cost_us=45.0,
                                    cores=20)

PLATFORMS: Tuple[HardwarePlatform, ...] = (RASPBERRY_PI_4,
                                           XEON_WORKSTATION)


@dataclass
class CpuBreakdown:
    """Per-NF CPU utilisation, the Fig. 7 stacked bars."""

    platform: str
    rate_per_s: float
    by_function: Dict[str, float] = field(default_factory=dict)

    @property
    def total_percent(self) -> float:
        return min(100.0, sum(self.by_function.values()))

    @property
    def saturated(self) -> bool:
        return sum(self.by_function.values()) >= 100.0


def cpu_breakdown(platform: HardwarePlatform, rate_per_s: float,
                  flow: Iterable[MessageTemplate],
                  on_board: Iterable[Role]) -> CpuBreakdown:
    """CPU% per function for ``rate_per_s`` procedures each second.

    Utilisation is normalised to the platform's full core budget.
    """
    on_board_set = set(on_board)
    budget_s = float(platform.cores)
    by_function: Dict[str, float] = {}
    others = 0.0
    db = 0.0
    for message in flow:
        if message.dst not in on_board_set:
            continue
        cost = platform.message_cost_s(message.dst) * rate_per_s
        name = message.dst.value
        by_function[name] = by_function.get(name, 0.0) + (
            cost / budget_s * 100.0)
        others += cost * _OTHERS_FRACTION / budget_s * 100.0
        if message.carries or message.creates:
            db += (_DB_WEIGHT * platform.base_cost_us * 1e-6
                   * rate_per_s / budget_s * 100.0)
    if others:
        by_function["Others"] = others
    if db:
        by_function["DB"] = db
    return CpuBreakdown(platform.name, rate_per_s, by_function)
