"""Signaling-latency queueing model (Fig. 8, Fig. 17).

Procedure latency has three parts:

* **service time**: the CPU cost of processing the procedure's
  messages on the satellite platform;
* **queueing delay**: M/M/1 waiting while the signaling processor is
  loaded -- this is what bends the Fig. 8 curves upward and makes them
  blow up near saturation;
* **propagation**: round trips to the remote home for every message
  that crosses the space-ground boundary (the dominant term for the
  transparent-pipe and radio-only options).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from ..fiveg.messages import MessageTemplate, Role
from .model import HardwarePlatform

#: Queueing delay reported once the arrival rate exceeds capacity;
#: stands in for "the procedure effectively never completes".
SATURATED_LATENCY_S = 30.0


@dataclass(frozen=True)
class LatencyEstimate:
    """Latency decomposition for one procedure at one load point."""

    service_s: float
    queueing_s: float
    propagation_s: float
    saturated: bool

    @property
    def total_s(self) -> float:
        return self.service_s + self.queueing_s + self.propagation_s


def mm1_wait_s(arrival_rate: float, service_time_s: float,
               servers: int = 1) -> Tuple[float, bool]:
    """Mean M/M/1 (or M/M/c-approximated) waiting time.

    Returns ``(wait, saturated)``; the saturated flag replaces the
    divergence at rho >= 1 with :data:`SATURATED_LATENCY_S`.
    """
    if service_time_s <= 0:
        return 0.0, False
    capacity = servers / service_time_s
    rho = arrival_rate / capacity
    if rho >= 1.0:
        return SATURATED_LATENCY_S, True
    # M/M/1 waiting time scaled by utilisation; with c servers we use
    # the standard single-queue approximation W = rho/(capacity-lambda).
    wait = rho / (capacity - arrival_rate)
    return wait, False


def procedure_latency(platform: HardwarePlatform, rate_per_s: float,
                      flow: Iterable[MessageTemplate],
                      on_board: Iterable[Role],
                      ground_rtt_s: float = 0.0,
                      crypto_overhead_s: float = 0.0) -> LatencyEstimate:
    """End-to-end signaling latency of one procedure under load.

    ``ground_rtt_s`` is charged once per message whose source and
    destination straddle the space-ground boundary (one one-way trip
    each, so two boundary messages make a round trip).
    ``crypto_overhead_s`` models SpaceCore's local state decryption and
    key agreement (Fig. 18a), charged once per procedure.
    """
    flow = list(flow)
    on_board_set = set(on_board)
    service = platform.procedure_cost_s(flow, on_board_set)
    # Arrival rate in *messages* per second at the on-board processor.
    msgs_on_board = sum(1 for m in flow if m.dst in on_board_set)
    per_message = (service / msgs_on_board) if msgs_on_board else 0.0
    message_rate = rate_per_s * msgs_on_board
    wait_per_msg, saturated = mm1_wait_s(message_rate, per_message,
                                         platform.cores)
    queueing = (wait_per_msg * msgs_on_board if not saturated
                else SATURATED_LATENCY_S)
    boundary_msgs = sum(
        1 for m in flow
        if _is_space(m.src, on_board_set) != _is_space(m.dst, on_board_set)
        and Role.UE not in (m.src, m.dst))
    propagation = boundary_msgs * (ground_rtt_s / 2.0)
    return LatencyEstimate(service + crypto_overhead_s, queueing,
                           propagation, saturated)


def _is_space(role: Role, on_board: set) -> bool:
    """Whether a role lives on the satellite side of the boundary."""
    if role is Role.UE:
        return True  # the UE talks to the satellite over the radio leg
    return role in on_board
