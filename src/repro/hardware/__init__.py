"""Satellite hardware CPU and queueing-latency models (Fig. 7/8/17)."""

from .model import (
    CpuBreakdown,
    HardwarePlatform,
    PLATFORMS,
    RASPBERRY_PI_4,
    XEON_WORKSTATION,
    cpu_breakdown,
)
from .queueing import (
    LatencyEstimate,
    SATURATED_LATENCY_S,
    mm1_wait_s,
    procedure_latency,
)

__all__ = [
    "CpuBreakdown", "HardwarePlatform", "PLATFORMS", "RASPBERRY_PI_4",
    "XEON_WORKSTATION", "cpu_breakdown",
    "LatencyEstimate", "SATURATED_LATENCY_S", "mm1_wait_s",
    "procedure_latency",
]
