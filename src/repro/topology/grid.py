"""The +Grid satellite network topology (S3, S6).

Every satellite keeps four inter-satellite links: two to its intra-orbit
neighbours and two to the same slot of the adjacent planes -- the
"standard grid satellite network topology [6, 79]" the paper assumes.
Ground stations attach to whatever satellite is overhead at a given
time (a ground-space link).
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, FrozenSet, List, Sequence, Tuple

import networkx as nx
import numpy as np

from ..constants import SPEED_OF_LIGHT_KM_S
from ..orbits.constellation import Constellation
from ..orbits.coordinates import distance3, geodetic_to_ecef
from ..orbits.coverage import coverage_half_angle
from ..orbits.groundstations import GroundStation
from ..orbits.propagator import IdealPropagator
from ..orbits.snapshot import snapshot_for
from ..constants import EARTH_RADIUS_KM
from .links import propagation_delay_s


class GridTopology:
    """Time-parameterised +Grid topology over one constellation.

    Node naming: satellites are integers (flat index); ground stations
    are their :class:`GroundStation` names.
    """

    def __init__(self, propagator: IdealPropagator,
                 ground_stations: Sequence[GroundStation] = ()):
        self.propagator = propagator
        self.constellation: Constellation = propagator.constellation
        self.ground_stations = list(ground_stations)
        self._failed_sats: set = set()
        self._failed_isls: set = set()
        self._failed_stations: set = set()
        # The +Grid wiring is static; memoise each satellite's four
        # neighbours so per-hop routing does no plane/slot arithmetic.
        self._neighbor_cache: Dict[int, Tuple[int, int, int, int]] = {}
        #: Monotonic counter bumped on every failure-state change, so
        #: liveness-dependent caches (e.g. DijkstraRouter graphs) can
        #: key on it.  Pure-geometry snapshots never depend on it.
        self._fault_epoch = 0
        #: Weak references to zero-argument callbacks fired after every
        #: fault-epoch bump; routers register their ``invalidate`` here
        #: so liveness caches are dropped the moment chaos injection
        #: changes the topology (not merely aged out by key mismatch).
        self._fault_listeners: List[weakref.ref] = []

    # -- failure injection ---------------------------------------------------

    @property
    def fault_epoch(self) -> int:
        """Version of the failure state; changes invalidate liveness caches."""
        return self._fault_epoch

    def add_fault_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired after every failure-state change.

        Held weakly (``WeakMethod`` for bound methods), so registering
        a router's ``invalidate`` does not keep the router alive; dead
        references are pruned on notification.
        """
        ref: weakref.ref
        if hasattr(listener, "__self__"):
            ref = weakref.WeakMethod(listener)  # type: ignore[arg-type]
        else:
            ref = weakref.ref(listener)
        self._fault_listeners.append(ref)

    def _bump_fault_epoch(self) -> None:
        self._fault_epoch += 1
        if not self._fault_listeners:
            return
        live = []
        for ref in self._fault_listeners:
            callback = ref()
            if callback is not None:
                live.append(ref)
                callback()
        self._fault_listeners = live

    def fail_satellite(self, sat: int) -> None:
        """Remove a satellite (radiation/debris failure, S3.3).

        Idempotent: failing an already-failed satellite neither bumps
        the fault epoch nor invalidates liveness caches.
        """
        if sat not in self._failed_sats:
            self._failed_sats.add(sat)
            self._bump_fault_epoch()

    def recover_satellite(self, sat: int) -> None:
        """Bring a failed satellite back into the topology."""
        if sat in self._failed_sats:
            self._failed_sats.discard(sat)
            self._bump_fault_epoch()

    def fail_isl(self, sat_a: int, sat_b: int) -> None:
        """Take one ISL down (laser misalignment, S3.3). Idempotent."""
        key = frozenset((sat_a, sat_b))
        if key not in self._failed_isls:
            self._failed_isls.add(key)
            self._bump_fault_epoch()

    def recover_isl(self, sat_a: int, sat_b: int) -> None:
        """Restore a failed inter-satellite link. Idempotent."""
        key = frozenset((sat_a, sat_b))
        if key in self._failed_isls:
            self._failed_isls.discard(key)
            self._bump_fault_epoch()

    def fail_ground_station(self, station: int) -> None:
        """Take one ground station offline (regional outage). Idempotent."""
        if not 0 <= station < len(self.ground_stations):
            raise ValueError(f"no ground station with index {station}")
        if station not in self._failed_stations:
            self._failed_stations.add(station)
            self._bump_fault_epoch()

    def recover_ground_station(self, station: int) -> None:
        """Bring a downed ground station back. Idempotent."""
        if station in self._failed_stations:
            self._failed_stations.discard(station)
            self._bump_fault_epoch()

    def failed_satellites(self) -> FrozenSet[int]:
        """The currently-failed satellite set (immutable view)."""
        return frozenset(self._failed_sats)

    def failed_isls(self) -> FrozenSet[FrozenSet[int]]:
        """The currently-marked-failed ISL set (immutable view)."""
        return frozenset(self._failed_isls)

    @property
    def has_topology_faults(self) -> bool:
        """Whether any satellite or ISL failure mark is active."""
        return bool(self._failed_sats or self._failed_isls)

    def ground_station_up(self, station: int) -> bool:
        """Whether the ground station at this index is online."""
        return station not in self._failed_stations

    def live_ground_stations(self) -> List[Tuple[int, GroundStation]]:
        """(index, station) pairs of every currently-online station."""
        return [(index, station)
                for index, station in enumerate(self.ground_stations)
                if index not in self._failed_stations]

    def is_up(self, sat: int) -> bool:
        """Whether a satellite is alive."""
        return sat not in self._failed_sats

    def isl_up(self, sat_a: int, sat_b: int) -> bool:
        """Whether the link between two satellites is usable."""
        return (self.is_up(sat_a) and self.is_up(sat_b)
                and frozenset((sat_a, sat_b)) not in self._failed_isls)

    def isl_marked_failed(self, sat_a: int, sat_b: int) -> bool:
        """Whether the link itself carries a failure mark.

        Distinct from ``not isl_up``: a link with live endpoints and no
        mark is up, while a marked link stays down even after its
        endpoints recover.  Fault injectors use this to restore only
        the marks they themselves placed.
        """
        return frozenset((sat_a, sat_b)) in self._failed_isls

    # -- neighbourhood ---------------------------------------------------------

    def _grid_neighbors(self, sat: int) -> Tuple[int, int, int, int]:
        """(up, down, left, right) neighbours of ``sat``, memoised."""
        cached = self._neighbor_cache.get(sat)
        if cached is None:
            c = self.constellation
            plane, slot = c.plane_slot(sat)
            up, down = c.intra_plane_neighbors(plane, slot)
            left, right = c.inter_plane_neighbors(plane, slot)
            cached = (up, down, left, right)
            self._neighbor_cache[sat] = cached
        return cached

    def isl_neighbors(self, sat: int) -> List[int]:
        """The up-to-four live grid neighbours of ``sat``."""
        up, down, left, right = self._grid_neighbors(sat)
        return [n for n in (up, down, left, right) if self.isl_up(sat, n)]

    def directional_neighbors(self, sat: int) -> Dict[str, int]:
        """Neighbours keyed by the Algorithm 1 direction names."""
        up, down, left, right = self._grid_neighbors(sat)
        return {"up": up, "down": down, "left": left, "right": right}

    # -- geometry ---------------------------------------------------------------

    def sat_position(self, sat: int, t: float) -> Tuple[float, float, float]:
        """Earth-fixed Cartesian position of a satellite at t (km)."""
        pos = snapshot_for(self.propagator, t).positions_ecef[sat]
        return (float(pos[0]), float(pos[1]), float(pos[2]))

    def isl_distance_km(self, sat_a: int, sat_b: int, t: float) -> float:
        """Geometric length of the link between two satellites (km)."""
        return distance3(self.sat_position(sat_a, t),
                         self.sat_position(sat_b, t))

    def isl_feasible(self, sat_a: int, sat_b: int, t: float,
                     atmosphere_km: float = 80.0) -> bool:
        """Geometric feasibility of a laser link at time t.

        The chord must clear the Earth plus an atmospheric margin;
        grid neighbours in LEO shells always do, but arbitrary pairs
        (e.g. candidate shortcut links) may not.
        """
        from .links import line_of_sight_clear
        return line_of_sight_clear(
            self.sat_position(sat_a, t), self.sat_position(sat_b, t),
            EARTH_RADIUS_KM + atmosphere_km)

    def isl_delay_s(self, sat_a: int, sat_b: int, t: float) -> float:
        """One-way propagation delay over an ISL (s)."""
        return propagation_delay_s(self.isl_distance_km(sat_a, sat_b, t))

    def gsl_delay_s(self, sat: int, station: GroundStation,
                    t: float) -> float:
        """One-way propagation delay of a ground-space link (s)."""
        sat_pos = self.sat_position(sat, t)
        gs_pos = geodetic_to_ecef(station.lat, station.lon, EARTH_RADIUS_KM)
        return propagation_delay_s(distance3(sat_pos, gs_pos))

    def uplink_delay_s(self, sat: int, ue_lat: float, ue_lon: float,
                       t: float) -> float:
        """UE-to-satellite radio propagation delay."""
        sat_pos = self.sat_position(sat, t)
        ue_pos = geodetic_to_ecef(ue_lat, ue_lon, EARTH_RADIUS_KM)
        return propagation_delay_s(distance3(sat_pos, ue_pos))

    # -- ground-station attachment -----------------------------------------------

    def station_access_satellite(self, station: GroundStation,
                                 t: float) -> int:
        """The satellite currently serving a gateway (closest overhead).

        Returns -1 when no live satellite covers the gateway.
        """
        c = self.constellation
        theta = coverage_half_angle(c.altitude_km, c.min_elevation_deg)
        ang = snapshot_for(self.propagator, t).central_angles(
            station.lat, station.lon)
        order = np.argsort(ang)
        for idx in order:
            sat = int(idx)
            if ang[idx] > theta:
                break
            if self.is_up(sat):
                return sat
        return -1

    # -- graph snapshot ------------------------------------------------------------

    def snapshot_graph(self, t: float,
                       include_ground: bool = True) -> nx.Graph:
        """A weighted (propagation-delay) graph of the live topology at t.

        Used by the Dijkstra baseline router and by reachability
        analyses under failure injection.
        """
        graph = nx.Graph()
        c = self.constellation
        positions = snapshot_for(self.propagator, t).positions_ecef
        for sat in range(c.total_satellites):
            if self.is_up(sat):
                graph.add_node(sat)
        for sat in range(c.total_satellites):
            if not self.is_up(sat):
                continue
            plane, slot = c.plane_slot(sat)
            up, _ = c.intra_plane_neighbors(plane, slot)
            _, right = c.inter_plane_neighbors(plane, slot)
            for nbr in (up, right):
                if self.isl_up(sat, nbr):
                    dist = float(np.linalg.norm(positions[sat]
                                                - positions[nbr]))
                    graph.add_edge(sat, nbr,
                                   weight=dist / SPEED_OF_LIGHT_KM_S,
                                   distance_km=dist)
        if include_ground:
            for _, gs in self.live_ground_stations():
                access = self.station_access_satellite(gs, t)
                if access >= 0:
                    delay = self.gsl_delay_s(access, gs, t)
                    graph.add_edge(gs.name, access, weight=delay,
                                   distance_km=delay * SPEED_OF_LIGHT_KM_S)
        return graph
