"""Vectorized batch packet-routing plane (Algorithm 1 as array programs).

The scalar :class:`~repro.topology.routing.GeospatialRouter` walks one
packet at a time through a Python-level hop loop; at Starlink scale
that caps routing throughput orders of magnitude below what the
stateless design can sustain.  This module routes an ``(N,)`` *batch*
of packets per call: every per-hop decision of Algorithm 1 -- coverage
test, both-representation hop offsets, dominant-dimension direction
pick, neighbour gather, delay accumulation -- is one NumPy operation
over the still-active packets, so the Python interpreter executes a
handful of statements per *hop level* instead of per packet-hop.

Bit-match contract
==================
For every packet the batch plane either (a) replays the scalar
floating-point arithmetic operation-for-operation (same haversine
expression tree, same ``wrap_signed`` modulo form, same strict-``<``
representation pick, same hop-length formula), or (b) detects that the
packet needs a code path the vectorized walk does not model -- grid
deflection around faults, caller-supplied ``avoid_links``, or a node
revisit on seam (non-full-torus) constellations -- and *falls back* to
the scalar router for that packet alone.  Either way
``route_batch(...).results()`` is element-for-element identical
(paths, verdicts, delays, distances) to calling
``GeospatialRouter.route`` in a loop, which is what the equivalence
suite asserts.

Per-epoch next-hop tables
=========================
All per-satellite state the walk gathers from -- runtime (alpha,
gamma) coordinates, sub-satellite points, the ``(N, 4)`` +Grid
neighbour table, ISL hop lengths and liveness masks -- is materialised
once per ``(epoch, fault_epoch)`` into a :class:`NextHopTable`, kept
in a small LRU.  Fault injection both re-keys the cache (the key
embeds ``fault_epoch``) and actively drops entries through the
topology's fault listeners, so chaos scenarios can never read a stale
liveness mask.

Epoch sweeps
============
Workloads that route *across* time -- the Fig. 18b relay pipeline
samples one packet per epoch over an orbital period, the cohort
engine probes offered load over a horizon -- go through
:meth:`BatchGeoRouter.route_sweep`: packets carry per-element epochs,
are grouped by epoch, and each epoch's wave routes in one
``route_batch``-equivalent call with the results scattered back in
input order.  The table LRU (and the snapshot LRU underneath it) is
sized to the sweep up front, so one table build per distinct epoch
serves the whole sweep and every repeat of it.
"""

from __future__ import annotations

import ctypes
import math
from collections import OrderedDict
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..constants import SPEED_OF_LIGHT_KM_S, TWO_PI
from ..obs.metrics import MetricsRegistry
from ..orbits.snapshot import (
    ConstellationSnapshot,
    grid_neighbor_table,
    snapshot_for,
    snapshots_for,
)
from ._walk_kernel import load_kernel
from .grid import GridTopology
from .routing import GeospatialRouter, RouteResult, grid_edge_liveness

__all__ = [
    "BatchGeoRouter",
    "BatchRouteResult",
    "NextHopTable",
    "BATCH_SIZE_BUCKETS",
]

#: Histogram buckets for ``routing.batch_size`` (batches span request
#: sizes from single packets to full Monte Carlo sweeps).
BATCH_SIZE_BUCKETS = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0,
                      16384.0, 65536.0, 262144.0, 1048576.0)

#: Column order of the neighbour/hop tables (matches
#: :data:`repro.orbits.snapshot.GRID_DIRECTIONS`).
_UP, _DOWN, _LEFT, _RIGHT = 0, 1, 2, 3

#: Half-width of the guard band (in cosine space) around the coverage
#: threshold inside which the dot-product screen defers to the exact
#: scalar haversine.  Both formulas agree with the true central angle
#: to ~1e-14, so 1e-9 is over a thousand times wider than any possible
#: disagreement -- decisions outside the band are provably identical.
_COVERAGE_GUARD = 1e-9


def _wrap_signed_diff(diff: np.ndarray) -> np.ndarray:
    """Bit-exact :func:`repro.orbits.coordinates.wrap_signed` for
    angle *differences* in ``(-4*pi, 2*pi)``.

    The scalar computes ``diff % TWO_PI`` then conditionally subtracts
    ``TWO_PI``.  For ``|diff| < TWO_PI`` the ``fmod`` inside Python's
    ``%`` is exact (returns ``diff`` unchanged), so the modulo equals
    ``diff + TWO_PI`` (one rounded add) when negative and ``diff``
    otherwise.  For ``diff`` in ``(-4*pi, -2*pi]`` the first
    ``+TWO_PI`` is *exact* by the Sterbenz lemma (the operands are
    within a factor of two), so applying the conditional add twice
    reproduces ``%`` bit-for-bit -- without the far costlier fmod.
    All (alpha, gamma) difference inputs here lie in that range:
    minuends come from ``wrap_angle``/``asin``/``pi - asin`` (all
    ``>= -pi/2``) and subtrahends from ``wrap_angle`` (``< 2*pi``).
    """
    wrapped = np.where(diff < 0.0, diff + TWO_PI, diff)
    negative = wrapped < 0.0
    if negative.any():
        wrapped[negative] += TWO_PI
    wrapped[wrapped > math.pi] -= TWO_PI
    return wrapped


class NextHopTable:
    """Everything one epoch of batch forwarding gathers from.

    Pure-geometry arrays (coordinates, neighbour wiring, hop lengths)
    come straight from the epoch snapshot and the constellation shape;
    liveness (``healthy`` / ``edge_up``) is sampled from the topology's
    failure marks at build time, which is why the cache key includes
    the fault epoch.
    """

    __slots__ = ("snapshot", "fault_epoch", "neighbors", "hop_km",
                 "hop_delay_s", "alpha", "gamma", "sub_lat", "sub_lon",
                 "unit_x", "unit_y", "unit_z", "healthy", "edge_up")

    def __init__(self, snapshot: ConstellationSnapshot,
                 topology: GridTopology):
        self.snapshot = snapshot
        self.fault_epoch = topology.fault_epoch
        self.neighbors = grid_neighbor_table(snapshot.constellation)
        self.hop_km = snapshot.hop_lengths_km()
        # Per-edge propagation delay, divided once at table build: the
        # scalar accumulates ``hop_km / c`` per hop, and an elementwise
        # divide of the same operands yields the same quotient bits.
        self.hop_delay_s = self.hop_km / SPEED_OF_LIGHT_KM_S
        # ascontiguousarray is a no-op passthrough when the snapshot
        # arrays are already contiguous; the compiled walk kernel
        # indexes raw pointers, so contiguity is load-bearing.
        self.alpha = np.ascontiguousarray(snapshot.raan_ecef)
        self.gamma = np.ascontiguousarray(snapshot.arg_latitude)
        subs = snapshot.subpoints
        self.sub_lat = np.ascontiguousarray(subs[:, 0])
        self.sub_lon = np.ascontiguousarray(subs[:, 1])
        # Unit position vectors: the walk's coverage *screen* is a dot
        # product against the destination radial (far cheaper than a
        # gathered haversine); only near-threshold packets re-test with
        # the exact scalar formula.
        pos = snapshot.positions_ecef
        norm = np.sqrt(pos[:, 0] * pos[:, 0] + pos[:, 1] * pos[:, 1]
                       + pos[:, 2] * pos[:, 2])
        self.unit_x = pos[:, 0] / norm
        self.unit_y = pos[:, 1] / norm
        self.unit_z = pos[:, 2] / norm
        self.healthy = not topology.has_topology_faults
        if self.healthy:
            self.edge_up = None
        else:
            self.edge_up = grid_edge_liveness(topology, self.neighbors)


class BatchRouteResult:
    """Structure-of-arrays outcome of one ``route_batch`` call.

    Scalar :class:`~repro.topology.routing.RouteResult` objects are
    materialised lazily (:meth:`result` / :meth:`results`): at millions
    of packets per second the per-packet Python objects would cost more
    than the routing itself, and bulk consumers (benchmarks, sweeps,
    the packet layer) only need the arrays.

    The dense path matrix is lazy for the same reason: the compiled
    walk writes only the first ``path_len[i]`` cells of each row, and
    normalising the rest to -1 is a couple hundred megabytes of memory
    traffic per million packets that verdict/delay consumers never
    need.  Row reads (:meth:`path`) slice by ``path_len`` and are
    always exact; :attr:`path_buffer` trims and normalises the matrix
    on first access.
    """

    __slots__ = ("delivered", "degraded", "delay_s", "distance_km",
                 "path_len", "fallback", "_paths", "_normalized")

    def __init__(self, delivered: np.ndarray, degraded: np.ndarray,
                 delay_s: np.ndarray, distance_km: np.ndarray,
                 path_buffer: np.ndarray, path_len: np.ndarray,
                 fallback: np.ndarray, normalized: bool = True):
        self.delivered = delivered
        self.degraded = degraded
        self.delay_s = delay_s
        self.distance_km = distance_km
        self.path_len = path_len
        self.fallback = fallback
        self._paths = path_buffer
        self._normalized = normalized

    def __len__(self) -> int:
        return int(self.delivered.shape[0])

    @property
    def path_buffer(self) -> np.ndarray:
        """The dense ``(N, width)`` path matrix, -1 beyond each path.

        Materialised on first access (see the class docstring); the
        trimmed, normalised matrix is cached.
        """
        if not self._normalized:
            paths = self._paths
            width = max(int(self.path_len.max()), 1)
            if width < paths.shape[1]:
                paths = np.ascontiguousarray(paths[:, :width])
            paths[np.arange(width)[None, :]
                  >= self.path_len[:, None]] = -1
            self._paths = paths
            self._normalized = True
        return self._paths

    @property
    def hops(self) -> np.ndarray:
        """Per-packet hop count (``len(path) - 1``, floored at 0)."""
        return np.maximum(self.path_len - 1, 0)

    def path(self, index: int) -> List[int]:
        """The node path of packet ``index`` as a plain list."""
        n = int(self.path_len[index])
        return [int(v) for v in self._paths[index, :n]]

    def result(self, index: int) -> RouteResult:
        """Materialise packet ``index`` as a scalar RouteResult."""
        return RouteResult(
            delivered=bool(self.delivered[index]),
            path=self.path(index),
            delay_s=float(self.delay_s[index]),
            distance_km=float(self.distance_km[index]),
            degraded=bool(self.degraded[index]))

    def results(self) -> List[RouteResult]:
        """Materialise the whole batch (equivalence tests, small runs)."""
        return [self.result(i) for i in range(len(self))]


class BatchGeoRouter:
    """Algorithm 1 over packet batches, next-hop tables per epoch.

    Wraps a scalar :class:`GeospatialRouter` (sharing its coverage
    geometry and ``degraded_slack``) both as the per-packet fallback
    for paths the array walk does not model and as the reference the
    equivalence suite compares against.
    """

    def __init__(self, topology: GridTopology, max_hops: int = 256,
                 metrics: Optional[MetricsRegistry] = None,
                 table_cache_size: int = 8,
                 chunk_size: int = 65536,
                 use_kernel: Optional[bool] = None):
        self.topology = topology
        self.scalar = GeospatialRouter(topology, max_hops=max_hops)
        self.max_hops = max_hops
        self.metrics = metrics
        #: Packets per lock-step walk; large batches are split so the
        #: per-hop working set stays cache-resident.  Results are
        #: independent per packet, so any chunking is bitwise neutral.
        self.chunk_size = max(1, chunk_size)
        #: ``None``: use the compiled walk kernel when one is
        #: available, else the NumPy walk (they are bit-identical).
        #: ``True``: require the kernel; ``False``: never use it.
        self._use_kernel = use_kernel
        self._kernel_lib: Optional[ctypes.CDLL] = None
        self._kernel_resolved = False
        self._table_cache_size = max(1, table_cache_size)
        self._tables: "OrderedDict[Tuple[float, int], NextHopTable]" = (
            OrderedDict())
        c = topology.constellation
        #: Full-torus Walker shells (delta-RAAN spans the whole circle,
        #: e.g. Starlink/Kuiper deltas) admit a strict-decrease
        #: argument on the hop metric, so the greedy walk can never
        #: revisit a node; star constellations (OneWeb/Iridium,
        #: raan_spread = pi) have a seam where it can, and get an
        #: explicit per-step revisit check.
        self._full_torus = math.isclose(
            c.delta_raan * c.num_planes, TWO_PI, rel_tol=1e-9)
        topology.add_fault_listener(self.invalidate)

    # -- table cache ---------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every cached next-hop table (fault listeners call this)."""
        self._tables.clear()

    def table_cache_size(self) -> int:
        """Number of next-hop tables currently cached (diagnostics)."""
        return len(self._tables)

    def _count(self, name: str, amount: int = 1, **labels: object) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name, **labels).inc(amount)

    def _kernel_handle(self) -> Optional[ctypes.CDLL]:
        """The compiled walk kernel, or ``None`` for the NumPy walk."""
        if self._use_kernel is False:
            return None
        if not self._kernel_resolved:
            self._kernel_resolved = True
            self._kernel_lib = load_kernel()
        if self._use_kernel is True and self._kernel_lib is None:
            raise RuntimeError(
                "use_kernel=True but no compiled walk kernel is "
                "available (no C compiler, failed build, or "
                "REPRO_NO_CKERNEL set)")
        return self._kernel_lib

    def _table(self, t: float) -> NextHopTable:
        key = (float(t), self.topology.fault_epoch)
        table = self._tables.get(key)
        if table is not None:
            self._tables.move_to_end(key)
            self._count("routing.table_cache_hits")
            return table
        self._count("routing.table_cache_misses")
        self._count("routing.table_builds")
        snapshot = snapshot_for(self.topology.propagator, t)
        table = NextHopTable(snapshot, self.topology)
        self._tables[key] = table
        while len(self._tables) > self._table_cache_size:
            self._tables.popitem(last=False)
        return table

    # -- scalar delegation ----------------------------------------------------

    def route(self, src_sat: int, dest_lat: float, dest_lon: float,
              t: float,
              avoid_links: Optional[Set[FrozenSet[int]]] = None
              ) -> RouteResult:
        """Single-packet routing (delegates to the scalar reference)."""
        self._count("routing.packets", plane="scalar")
        return self.scalar.route(src_sat, dest_lat, dest_lon, t,
                                 avoid_links=avoid_links)

    # -- the batch walk --------------------------------------------------------

    def route_batch(self, src_sats: Sequence[int],
                    dest_lats: Sequence[float],
                    dest_lons: Sequence[float], t: float,
                    avoid_links: Optional[Set[FrozenSet[int]]] = None
                    ) -> BatchRouteResult:
        """Route ``(N,)`` packets in lock-step vectorized hops.

        All packets share one epoch ``t``.  Per hop level the walk
        does: one gathered haversine coverage test, one
        both-representation offset computation, one direction pick,
        one neighbour/hop-length gather -- each a single NumPy call
        over the packets still in flight.  Packets that hit a
        non-vectorized code path (deflection, ``avoid_links``, seam
        revisit) are recomputed exactly by the scalar router.
        """
        src = np.ascontiguousarray(np.asarray(src_sats, dtype=np.int64))
        dlat = np.ascontiguousarray(np.asarray(dest_lats, dtype=float))
        dlon = np.ascontiguousarray(np.asarray(dest_lons, dtype=float))
        if not (src.shape == dlat.shape == dlon.shape and src.ndim == 1):
            raise ValueError("src/dest arrays must share one (N,) shape")
        n = src.shape[0]
        total = self.topology.constellation.total_satellites
        if n and (int(src.min()) < 0 or int(src.max()) >= total):
            raise ValueError("source satellite index out of range")
        self._count("routing.batches")
        self._count("routing.packets", n, plane="batch")
        if self.metrics is not None:
            self.metrics.histogram(
                "routing.batch_size",
                buckets=BATCH_SIZE_BUCKETS).observe(float(n))

        delivered = np.zeros(n, dtype=bool)
        degraded = np.zeros(n, dtype=bool)
        fallback = np.zeros(n, dtype=bool)
        delay = np.zeros(n, dtype=float)
        distance = np.zeros(n, dtype=float)
        path_len = np.ones(n, dtype=np.int32)

        if n == 0 or avoid_links:
            paths = np.full((n, 1), -1, dtype=np.int32)
            if n:
                paths[:, 0] = src
                # Caller-supplied link avoidance composes with the
                # visited set inside the scalar walk; rare (mid-flight
                # reroutes), so those packets take the exact scalar
                # path wholesale.
                fallback[:] = True
            return self._finish(src, dlat, dlon, t, avoid_links,
                                delivered, degraded, delay, distance,
                                paths, path_len, fallback)

        table = self._table(t)
        kernel = self._kernel_handle()
        if kernel is not None:
            # One raw path buffer for the whole batch; each chunk's
            # rows are a contiguous slice the kernel writes in place,
            # so there is no per-chunk stitch copy at all.  -1
            # normalisation of never-written cells happens lazily on
            # first path_buffer access (see BatchRouteResult).
            #
            # The capacity is deliberately small: an uninitialised
            # 64-column buffer costs far less than a -1-filled
            # (max_hops + 1)-column one, and the kernel flags the rare
            # longer walk for exact scalar recompute (which has no
            # capacity limit).  +Grid shortest-metric walks on the
            # paper's shells stay well under 64 hops; only fault
            # deflections ever exceed it.
            cap = min(self.max_hops + 1, 64)
            paths = np.empty((n, cap), dtype=np.int32)
            for lo in range(0, n, self.chunk_size):
                hi = min(n, lo + self.chunk_size)
                self._route_chunk_kernel(
                    kernel, table, src[lo:hi], dlat[lo:hi], dlon[lo:hi],
                    delivered[lo:hi], degraded[lo:hi], delay[lo:hi],
                    distance[lo:hi], path_len[lo:hi], fallback[lo:hi],
                    paths[lo:hi])
            return self._finish(src, dlat, dlon, t, avoid_links,
                                delivered, degraded, delay, distance,
                                paths, path_len, fallback,
                                normalized=False)
        if n <= self.chunk_size:
            paths = self._route_chunk(table, src, dlat, dlon, delivered,
                                      degraded, delay, distance,
                                      path_len, fallback)
        else:
            # Chunking keeps the per-hop working set inside the cache
            # hierarchy; per-packet results are independent, so chunked
            # and unchunked batches are bitwise identical.
            chunk_paths = []
            for lo in range(0, n, self.chunk_size):
                hi = min(n, lo + self.chunk_size)
                chunk_paths.append(self._route_chunk(
                    table, src[lo:hi], dlat[lo:hi], dlon[lo:hi],
                    delivered[lo:hi], degraded[lo:hi], delay[lo:hi],
                    distance[lo:hi], path_len[lo:hi], fallback[lo:hi]))
            width = max(p.shape[1] for p in chunk_paths)
            paths = np.empty((n, width), dtype=np.int32)
            for k, chunk in enumerate(chunk_paths):
                lo = k * self.chunk_size
                hi = lo + chunk.shape[0]
                paths[lo:hi, :chunk.shape[1]] = chunk
                if chunk.shape[1] < width:
                    paths[lo:hi, chunk.shape[1]:] = -1
        return self._finish(src, dlat, dlon, t, avoid_links, delivered,
                            degraded, delay, distance, paths, path_len,
                            fallback)

    # -- the epoch sweep -------------------------------------------------------

    def route_sweep(self, src_sats: Sequence[int],
                    dest_lats: Sequence[float],
                    dest_lons: Sequence[float],
                    ts: Sequence[float],
                    avoid_links: Optional[Set[FrozenSet[int]]] = None
                    ) -> BatchRouteResult:
        """Route ``(N,)`` packets, each at its *own* epoch ``ts[i]``.

        The time-sweeping face of the batch plane: packets are grouped
        by epoch, each epoch's wave runs through one
        :meth:`route_batch` call against that epoch's next-hop table,
        and the per-epoch results scatter back into one flat
        :class:`BatchRouteResult` **in input order**.  Packets are
        independent, so the grouping is bitwise neutral: element ``i``
        equals ``GeospatialRouter.route(src[i], lat[i], lon[i],
        ts[i])`` exactly, which is what the serial-vs-sweep
        equivalence suite asserts.

        The table LRU is sized to the sweep before the first wave
        routes: a 24-epoch sweep over the default 8-entry cache would
        otherwise evict every table it builds before a second pass
        (a repeated sweep, or the scalar fallback of a later epoch)
        could reuse it.  The capacity only grows, and sweeps that
        revisit their epochs rebuild nothing (``routing.table_builds``
        counts exactly one build per distinct ``(t, fault_epoch)``).
        """
        src = np.ascontiguousarray(np.asarray(src_sats, dtype=np.int64))
        dlat = np.ascontiguousarray(np.asarray(dest_lats, dtype=float))
        dlon = np.ascontiguousarray(np.asarray(dest_lons, dtype=float))
        t_arr = np.asarray(ts, dtype=float)
        if not (src.shape == dlat.shape == dlon.shape == t_arr.shape
                and src.ndim == 1):
            raise ValueError(
                "src/dest/ts arrays must share one (N,) shape")
        n = src.shape[0]
        self._count("routing.sweeps")
        if n == 0:
            return BatchRouteResult(
                np.zeros(0, dtype=bool), np.zeros(0, dtype=bool),
                np.zeros(0, dtype=float), np.zeros(0, dtype=float),
                np.full((0, 1), -1, dtype=np.int32),
                np.zeros(0, dtype=np.int32), np.zeros(0, dtype=bool))
        epochs, inverse = np.unique(t_arr, return_inverse=True)
        self._count("routing.sweep_epochs", int(epochs.size))
        if int(epochs.size) > self._table_cache_size:
            self._table_cache_size = int(epochs.size)
        # Build every epoch's snapshot up front through the
        # sweep-sized prefetch, so neither the table builds below nor
        # the scalar fallbacks inside them can thrash the snapshot LRU
        # on sweeps wider than its default capacity.
        snapshots_for(self.topology.propagator,
                      [float(t) for t in epochs])

        delivered = np.zeros(n, dtype=bool)
        degraded = np.zeros(n, dtype=bool)
        fallback = np.zeros(n, dtype=bool)
        delay = np.zeros(n, dtype=float)
        distance = np.zeros(n, dtype=float)
        path_len = np.ones(n, dtype=np.int32)
        paths: Optional[np.ndarray] = None
        for k in range(epochs.size):
            sel = np.nonzero(inverse == k)[0]
            wave = self.route_batch(src[sel], dlat[sel], dlon[sel],
                                    float(epochs[k]),
                                    avoid_links=avoid_links)
            delivered[sel] = wave.delivered
            degraded[sel] = wave.degraded
            fallback[sel] = wave.fallback
            delay[sel] = wave.delay_s
            distance[sel] = wave.distance_km
            path_len[sel] = wave.path_len
            # Merge the *raw* per-wave path buffers: only the first
            # ``path_len`` cells of a row are meaningful either way,
            # and ``normalized=False`` below defers the -1 padding of
            # everything else to first path_buffer access (exactly the
            # route_batch kernel-path policy).
            rows = wave._paths
            if paths is None:
                paths = np.empty((n, rows.shape[1]), dtype=np.int32)
            elif rows.shape[1] > paths.shape[1]:
                wider = np.empty((n, rows.shape[1]), dtype=np.int32)
                wider[:, :paths.shape[1]] = paths
                paths = wider
            paths[sel, :rows.shape[1]] = rows
        assert paths is not None
        return BatchRouteResult(delivered, degraded, delay, distance,
                                paths, path_len, fallback,
                                normalized=False)

    def sweep_trials(self, src: Tuple[float, float],
                     dst: Tuple[float, float],
                     ts: Sequence[float]
                     ) -> Tuple[np.ndarray, BatchRouteResult]:
        """Relay convenience: one packet per epoch from a ground source.

        For every epoch ``t`` the serving satellite over the ground
        point ``src`` is looked up on that epoch's snapshot (the same
        ``snapshot_for(...).serving_satellite`` read the scalar relay
        loop performs) and a packet is routed from it to the ground
        destination ``dst`` through :meth:`route_sweep`.  Epochs whose
        source point is uncovered are not routed: their slots come
        back undelivered with zero delay/distance and an empty path
        (``path_len == 0``), matching the scalar pipeline's
        "no serving satellite" trial records.

        Returns ``(src_sats, result)``: the per-epoch serving
        satellite (``-1`` = uncovered) and the flat epoch-aligned
        :class:`BatchRouteResult`.
        """
        ts_list = [float(t) for t in ts]
        n = len(ts_list)
        snaps = snapshots_for(self.topology.propagator, ts_list)
        src_sats = np.fromiter(
            (snap.serving_satellite(src[0], src[1]) for snap in snaps),
            dtype=np.int64, count=n)
        routed = np.nonzero(src_sats >= 0)[0]
        wave = self.route_sweep(
            src_sats[routed],
            np.full(routed.size, dst[0]), np.full(routed.size, dst[1]),
            np.asarray(ts_list, dtype=float)[routed])
        if routed.size == n:
            return src_sats, wave
        delivered = np.zeros(n, dtype=bool)
        degraded = np.zeros(n, dtype=bool)
        fallback = np.zeros(n, dtype=bool)
        delay = np.zeros(n, dtype=float)
        distance = np.zeros(n, dtype=float)
        path_len = np.zeros(n, dtype=np.int32)
        buffer = wave.path_buffer if routed.size else np.full(
            (0, 1), -1, dtype=np.int32)
        paths = np.full((n, max(buffer.shape[1], 1)), -1, dtype=np.int32)
        delivered[routed] = wave.delivered
        degraded[routed] = wave.degraded
        fallback[routed] = wave.fallback
        delay[routed] = wave.delay_s
        distance[routed] = wave.distance_km
        path_len[routed] = wave.path_len
        if routed.size:
            paths[routed, :buffer.shape[1]] = buffer
        return src_sats, BatchRouteResult(delivered, degraded, delay,
                                          distance, paths, path_len,
                                          fallback)

    def _route_chunk_kernel(self, kernel: ctypes.CDLL,
                            table: NextHopTable, src: np.ndarray,
                            dlat: np.ndarray, dlon: np.ndarray,
                            delivered: np.ndarray, degraded: np.ndarray,
                            delay: np.ndarray, distance: np.ndarray,
                            path_len: np.ndarray, fallback: np.ndarray,
                            paths: np.ndarray) -> None:
        """One chunk through the compiled per-packet walk.

        Same decision structure and float64 arithmetic as
        :meth:`_route_chunk` (see ``_walk_kernel``); scatters into the
        same output views and writes each packet's path into its row
        of ``paths`` (a contiguous row-slice of the batch buffer; only
        the first ``path_len`` cells of a row are touched).
        """
        n = src.shape[0]
        self._count("routing.kernel_packets", n)
        theta = self.scalar.coverage_angle
        c = self.topology.constellation
        a0, g0, a1, g1 = self.scalar.system.both_representations_batch(
            dlat, dlon)
        cos_dlat = np.cos(dlat)
        unit_x = cos_dlat * np.cos(dlon)
        unit_y = cos_dlat * np.sin(dlon)
        unit_z = np.sin(dlat)
        cap = paths.shape[1]
        edge = table.edge_up

        def ptr(array: np.ndarray) -> ctypes.c_void_p:
            return ctypes.c_void_p(array.ctypes.data)

        kernel.walk_chunk(
            n, self.max_hops, cap,
            1 if self._full_torus else 0,
            1 if table.healthy else 0,
            theta, theta * self.scalar.degraded_slack,
            math.cos(theta) + _COVERAGE_GUARD,
            math.cos(theta) - _COVERAGE_GUARD,
            c.delta_raan, c.delta_phase,
            ptr(src), ptr(a0), ptr(g0), ptr(a1), ptr(g1),
            ptr(dlat), ptr(dlon),
            ptr(unit_x), ptr(unit_y), ptr(unit_z),
            ptr(table.alpha), ptr(table.gamma),
            ptr(table.sub_lat), ptr(table.sub_lon),
            ptr(table.unit_x), ptr(table.unit_y), ptr(table.unit_z),
            ptr(table.neighbors), ptr(table.hop_km),
            ptr(table.hop_delay_s),
            ptr(edge) if edge is not None else None,
            ptr(delivered), ptr(degraded), ptr(fallback),
            ptr(delay), ptr(distance), ptr(path_len), ptr(paths))

    def _route_chunk(self, table: NextHopTable, src: np.ndarray,
                     dlat: np.ndarray, dlon: np.ndarray,
                     delivered: np.ndarray, degraded: np.ndarray,
                     delay: np.ndarray, distance: np.ndarray,
                     path_len: np.ndarray, fallback: np.ndarray
                     ) -> np.ndarray:
        """Lock-step walk of one chunk; scatters into the output views
        and returns the chunk's path buffer."""
        n = src.shape[0]
        theta = self.scalar.coverage_angle
        slack_theta = theta * self.scalar.degraded_slack
        cos_in = math.cos(theta) + _COVERAGE_GUARD
        cos_out = math.cos(theta) - _COVERAGE_GUARD
        c = self.topology.constellation
        delta_raan = c.delta_raan
        delta_phase = c.delta_phase
        a0, g0, a1, g1 = self.scalar.system.both_representations_batch(
            dlat, dlon)
        cos_dlat = np.cos(dlat)
        unit_x = cos_dlat * np.cos(dlon)
        unit_y = cos_dlat * np.sin(dlon)
        unit_z = np.sin(dlat)

        capacity = min(self.max_hops + 1, 64)
        paths = np.full((n, capacity), -1, dtype=np.int32)
        paths[:, 0] = src

        # Compacted in-flight state: element k of every array below is
        # the same packet; ``idx`` maps it back to its chunk slot.
        # Retired packets are filtered out so each hop level touches
        # only packets still walking.
        idx = np.arange(n)
        cur = src.astype(np.int32)
        delay_a = np.zeros(n, dtype=float)
        dist_a = np.zeros(n, dtype=float)

        def _compact(keep: np.ndarray) -> None:
            nonlocal idx, cur, delay_a, dist_a, a0, g0, a1, g1
            nonlocal unit_x, unit_y, unit_z
            idx = idx[keep]
            cur = cur[keep]
            delay_a = delay_a[keep]
            dist_a = dist_a[keep]
            a0 = a0[keep]
            g0 = g0[keep]
            a1 = a1[keep]
            g1 = g1[keep]
            unit_x = unit_x[keep]
            unit_y = unit_y[keep]
            unit_z = unit_z[keep]

        for step in range(self.max_hops):
            if idx.size == 0:
                break
            # Lines 1-2: coverage.  Screen with a dot product against
            # the destination radial (monotone in the central angle);
            # only packets inside the guard band around the threshold
            # re-test with the exact scalar haversine, so the decision
            # is bit-identical while the hot path stays transcendental-
            # free.
            dot = table.unit_x[cur] * unit_x
            dot += table.unit_y[cur] * unit_y
            dot += table.unit_z[cur] * unit_z
            covered = dot >= cos_in
            border = (dot > cos_out) & ~covered
            if border.any():
                b = np.nonzero(border)[0]
                covered[b] = self._exact_angles(
                    table, cur[b], dlat[idx[b]], dlon[idx[b]]) <= theta
            if covered.any():
                done = idx[covered]
                delivered[done] = True
                delay[done] = delay_a[covered]
                distance[done] = dist_a[covered]
                path_len[done] = step + 1
                _compact(~covered)
                if idx.size == 0:
                    break

            # Lines 3-10: both-representation offsets, strict-< pick.
            # The four signed differences are wrapped as one stacked
            # (4, m) program; only the gamma-ascending row (1) can sit
            # below -2*pi and need the second (exact, Sterbenz) add.
            alpha_s = table.alpha[cur]
            gamma_s = table.gamma[cur]
            diffs = np.empty((4, idx.size))
            np.subtract(a0, alpha_s, out=diffs[0])
            np.subtract(g0, gamma_s, out=diffs[1])
            np.subtract(a1, alpha_s, out=diffs[2])
            np.subtract(g1, gamma_s, out=diffs[3])
            wrapped = np.where(diffs < 0.0, diffs + TWO_PI, diffs)
            row1 = wrapped[1]
            negative = row1 < 0.0
            if negative.any():
                row1[negative] += TWO_PI
            offsets = np.where(wrapped > math.pi,
                               wrapped - TWO_PI, wrapped)
            offsets[0] /= delta_raan
            offsets[1] /= delta_phase
            offsets[2] /= delta_raan
            offsets[3] /= delta_phase
            magnitudes = np.abs(offsets)
            use_desc = (magnitudes[2] + magnitudes[3]
                        < magnitudes[0] + magnitudes[1])
            da = np.where(use_desc, offsets[2], offsets[0])
            dg = np.where(use_desc, offsets[3], offsets[1])
            abs_da = np.where(use_desc, magnitudes[2], magnitudes[0])
            abs_dg = np.where(use_desc, magnitudes[3], magnitudes[1])

            centered = (abs_da < 0.5) & (abs_dg < 0.5)
            if centered.any():
                cen = np.nonzero(centered)[0]
                near = (self._exact_angles(table, cur[cen],
                                           dlat[idx[cen]],
                                           dlon[idx[cen]])
                        <= slack_theta)
                done = idx[cen[near]]
                delivered[done] = True
                degraded[done] = True
                delay[done] = delay_a[cen[near]]
                distance[done] = dist_a[cen[near]]
                path_len[done] = step + 1
                # Centered but not even nearly covered: the scalar
                # walk deflects sideways -- recompute exactly.
                fallback[idx[cen[~near]]] = True
                keep = ~centered
                _compact(keep)
                if idx.size == 0:
                    break
                da = da[keep]
                dg = dg[keep]
                abs_da = abs_da[keep]
                abs_dg = abs_dg[keep]

            direction = np.where(
                abs_da > abs_dg,
                np.where(da > 0, _RIGHT, _LEFT),
                np.where(dg > 0, _UP, _DOWN))
            nxt = table.neighbors[cur, direction]

            if not table.healthy:
                assert table.edge_up is not None
                ok = table.edge_up[cur, direction]
                if not ok.all():
                    # Preferred link or endpoint is dead: the scalar
                    # walk deflects with the visited set -- recompute.
                    fallback[idx[~ok]] = True
                    _compact(ok)
                    if idx.size == 0:
                        break
                    direction = direction[ok]
                    nxt = nxt[ok]

            if not self._full_torus:
                # Seam constellations: greedy walks can revisit; the
                # scalar router then deflects.  Detect by prefix
                # membership (every active packet has exactly ``step``
                # hops, so the prefix is columns [0, step]) and hand
                # those packets to the scalar path.
                revisit = (paths[idx, :step + 1]
                           == nxt[:, None]).any(axis=1)
                if revisit.any():
                    fallback[idx[revisit]] = True
                    keep = ~revisit
                    _compact(keep)
                    if idx.size == 0:
                        break
                    direction = direction[keep]
                    nxt = nxt[keep]

            # Per-edge delay precomputed at table build with the same
            # operands/rounding as the scalar's per-hop divide.
            delay_a += table.hop_delay_s[cur, direction]
            dist_a += table.hop_km[cur, direction]
            if step + 1 >= capacity:
                grow = min(self.max_hops + 1, capacity * 2)
                paths = np.concatenate(
                    [paths, np.full((n, grow - capacity), -1,
                                    dtype=np.int32)], axis=1)
                capacity = grow
            paths[idx, step + 1] = nxt
            cur = nxt

        if idx.size:
            # max_hops levels exhausted: undelivered, with the partial
            # path/delay the walk accumulated (scalar semantics).
            delay[idx] = delay_a
            distance[idx] = dist_a
            path_len[idx] = self.max_hops + 1
        return paths

    def _exact_angles(self, table: NextHopTable, sats: np.ndarray,
                      lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Exact scalar-order haversine central angles for a subset."""
        sub_lat = table.sub_lat[sats]
        sd_lat = np.sin((lats - sub_lat) / 2.0)
        sd_lon = np.sin((lons - table.sub_lon[sats]) / 2.0)
        h = (sd_lat * sd_lat
             + np.cos(sub_lat) * np.cos(lats) * (sd_lon * sd_lon))
        np.clip(h, 0.0, 1.0, out=h)
        return 2.0 * np.arcsin(np.sqrt(h))

    def _finish(self, src: np.ndarray, dlat: np.ndarray,
                dlon: np.ndarray, t: float,
                avoid_links: Optional[Set[FrozenSet[int]]],
                delivered: np.ndarray, degraded: np.ndarray,
                delay: np.ndarray, distance: np.ndarray,
                paths: np.ndarray, path_len: np.ndarray,
                fallback: np.ndarray,
                normalized: bool = True) -> BatchRouteResult:
        """Recompute flagged packets with the scalar reference walk."""
        flagged = np.nonzero(fallback)[0]
        self._count("routing.scalar_fallbacks", int(flagged.size))
        for index in flagged:
            result = self.scalar.route(
                int(src[index]), float(dlat[index]), float(dlon[index]),
                t, avoid_links=avoid_links)
            delivered[index] = result.delivered
            degraded[index] = result.degraded
            delay[index] = result.delay_s
            distance[index] = result.distance_km
            node_count = len(result.path)
            if node_count > paths.shape[1]:
                paths = np.concatenate(
                    [paths, np.full((paths.shape[0],
                                     node_count - paths.shape[1]),
                                    -1, dtype=np.int32)], axis=1)
            paths[index, :node_count] = result.path
            paths[index, node_count:] = -1
            path_len[index] = node_count
        return BatchRouteResult(delivered, degraded, delay, distance,
                                paths, path_len, fallback,
                                normalized=normalized)


def batch_route_pairs(router: BatchGeoRouter,
                      pairs: Sequence[Tuple[int, float, float]],
                      t: float) -> List[RouteResult]:
    """Convenience: route ``(src, lat, lon)`` tuples, scalar results."""
    if not pairs:
        return []
    src = [p[0] for p in pairs]
    lats = [p[1] for p in pairs]
    lons = [p[2] for p in pairs]
    return router.route_batch(src, lats, lons, t).results()
