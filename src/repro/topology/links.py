"""Link models: inter-satellite lasers and space-ground radio.

Links carry both propagation delay (speed of light over the geometric
distance) and an availability state, so the failure experiments of
S3.3/Fig. 13 can take individual ISLs or ground-space links down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import SPEED_OF_LIGHT_KM_S


def propagation_delay_s(distance_km: float) -> float:
    """One-way speed-of-light delay over ``distance_km`` (seconds)."""
    if distance_km < 0:
        raise ValueError("distance cannot be negative")
    return distance_km / SPEED_OF_LIGHT_KM_S


@dataclass
class Link:
    """A point-to-point link between two nodes.

    ``kind`` is "isl" (inter-satellite laser) or "gsl" (ground-space
    radio).  ``frame_error_rate`` models the intermittent wireless
    degradation of Fig. 13b; a message traversing the link is lost with
    this probability (callers decide whether to retransmit).
    """

    node_a: str
    node_b: str
    kind: str = "isl"
    bandwidth_mbps: float = 1000.0
    frame_error_rate: float = 0.0
    up: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("isl", "gsl"):
            raise ValueError("link kind must be 'isl' or 'gsl'")
        if not 0.0 <= self.frame_error_rate <= 1.0:
            raise ValueError("frame error rate must be a probability")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")

    def other(self, node: str) -> str:
        """The far endpoint as seen from ``node``."""
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise ValueError(f"{node} is not an endpoint of this link")

    def fail(self) -> None:
        """Take the link down."""
        self.up = False

    def recover(self) -> None:
        """Bring the link back up."""
        self.up = True

    def delivers(self, rng=None) -> bool:
        """Whether one frame makes it across right now."""
        if not self.up:
            return False
        if self.frame_error_rate == 0.0 or rng is None:
            return self.up
        return rng.random() >= self.frame_error_rate

    def transmission_delay_s(self, size_bytes: int) -> float:
        """Serialisation delay for a message of ``size_bytes``."""
        bits = size_bytes * 8
        return bits / (self.bandwidth_mbps * 1e6)


@dataclass
class LinkBudget:
    """Simple distance-based link feasibility for laser ISLs.

    Laser ISLs have a maximum usable range (alignment and power): grid
    neighbours in LEO shells sit well inside it, but the model lets
    failure studies disable over-stretched links.
    """

    max_range_km: float = 6000.0

    def feasible(self, distance_km: float) -> bool:
        """Whether a laser link of this length closes."""
        return 0.0 < distance_km <= self.max_range_km


def line_of_sight_clear(pos_a, pos_b, occluder_radius_km: float) -> bool:
    """Whether the segment between two satellites clears the Earth.

    A laser ISL is geometrically feasible only when the chord between
    the satellites stays above the occluding sphere (Earth radius plus
    some atmosphere).  Uses the point-to-segment distance from the
    Earth's centre.
    """
    ax, ay, az = pos_a
    bx, by, bz = pos_b
    dx, dy, dz = bx - ax, by - ay, bz - az
    seg_len_sq = dx * dx + dy * dy + dz * dz
    if seg_len_sq == 0.0:
        return math.sqrt(ax * ax + ay * ay + az * az) > occluder_radius_km
    # Projection of the origin onto the segment, clamped to [0, 1].
    t = -(ax * dx + ay * dy + az * dz) / seg_len_sq
    t = max(0.0, min(1.0, t))
    cx, cy, cz = ax + t * dx, ay + t * dy, az + t * dz
    closest = math.sqrt(cx * cx + cy * cy + cz * cz)
    return closest > occluder_radius_km
