"""Optional compiled hop-walk kernel for the batch routing plane.

The NumPy lock-step walk in :mod:`repro.topology.batch_routing` is
portable, but each packet-hop costs on the order of a hundred
elementwise array passes; on one core that caps routing in the low
hundreds of thousands of packets per second.  This module compiles the
*same* walk -- operation-for-operation the same float64 arithmetic --
as a per-packet C loop over the shared :class:`NextHopTable` arrays,
which brings a hop down to a few dozen nanoseconds.

Bit-exactness
=============
The C source mirrors the scalar reference precisely:

* ``wrap_signed`` uses ``fmod`` with CPython's ``%`` sign adjustment
  (including the ``copysign(0.0, divisor)`` normalisation of a zero
  remainder), then the same ``> pi`` conditional subtract.
* The exact haversine replays the operand order of the scalar
  ``central_angle`` / the batch plane's ``_exact_angles`` (``x * x``
  squares, ``(cos * cos) * s2``, clip to ``[0, 1]``).
* Transcendentals come from the very libm the interpreter's ``math``
  module binds, and the build passes ``-ffp-contract=off`` so no FMA
  contraction re-associates a sum the NumPy plane rounds twice.

The build is lazy and entirely optional: no C compiler, a failed
compile, or ``REPRO_NO_CKERNEL=1`` all degrade silently to the NumPy
plane, whose results are bit-identical (the equivalence suite runs
against both engines).  Compiled objects are cached by source hash
under ``$REPRO_KERNEL_CACHE`` (default: a ``repro-kernels`` directory
in the system temp dir), so each source revision compiles once per
machine.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import List, Optional

__all__ = ["load_kernel", "kernel_source_hash"]

_KERNEL_SOURCE = r"""
#include <math.h>
#include <stdint.h>

/* Exactly the doubles Python's math.pi / repro.constants.TWO_PI hold. */
static const double K_PI     = 0x1.921fb54442d18p+1;
static const double K_TWO_PI = 0x1.921fb54442d18p+2;

/* CPython float % TWO_PI: fmod, shifted into the divisor's sign; a
 * zero remainder is normalised to the divisor's (positive) zero. */
static double pymod_two_pi(double a) {
    double r = fmod(a, K_TWO_PI);
    if (r != 0.0) {
        if (r < 0.0) r += K_TWO_PI;
    } else {
        r = 0.0;
    }
    return r;
}

/* repro.orbits.coordinates.wrap_signed */
static double wrap_signed(double a) {
    double w = pymod_two_pi(a);
    if (w > K_PI) w -= K_TWO_PI;
    return w;
}

/* wrap_signed for angle *differences* in (-4*pi, 2*pi) without the
 * fmod: for |d| < 2*pi the fmod inside Python's % returns d exactly,
 * so the modulo is one rounded +2*pi when negative; for d in
 * (-4*pi, -2*pi] the first +2*pi is exact (Sterbenz lemma), so a
 * second conditional add reproduces % bit-for-bit.  Same transform
 * the NumPy plane's _wrap_signed_diff uses. */
static double wrap_signed_diff(double d) {
    if (d <= -2.0 * K_TWO_PI || d >= K_TWO_PI)
        return wrap_signed(d);  /* out of proven range: exact path */
    double w = d < 0.0 ? d + K_TWO_PI : d;
    if (w < 0.0) w += K_TWO_PI;
    if (w > K_PI) w -= K_TWO_PI;
    return w;
}

/* The scalar-order haversine central angle (same expression tree as
 * BatchGeoRouter._exact_angles / coordinates.central_angle). */
static double exact_angle(double sat_lat, double sat_lon,
                          double dest_lat, double dest_lon) {
    double sd_lat = sin((dest_lat - sat_lat) / 2.0);
    double sd_lon = sin((dest_lon - sat_lon) / 2.0);
    double h = sd_lat * sd_lat
             + cos(sat_lat) * cos(dest_lat) * (sd_lon * sd_lon);
    if (h < 0.0) h = 0.0;
    if (h > 1.0) h = 1.0;
    return 2.0 * asin(sqrt(h));
}

/* Relative half-width of the guard band around each hop-offset
 * decision boundary.  The reference decisions compare correctly-
 * rounded quotients (x / delta, error <= 2^-53 relative) and their
 * rounded sums; the fast path compares the scale-invariant cross
 * products instead (x1 * dp vs x2 * dr -- the same real comparison,
 * different rounding, also within a few 2^-53 relative).  Whenever a
 * computed margin exceeds 1e-12 of the comparison scale -- over a
 * thousand times every rounding bound combined -- both evaluations
 * provably order the same way, so skipping the divisions cannot
 * change the decision.  Inside the band the reference divisions are
 * replayed verbatim. */
static const double K_GUARD = 1e-12;

/* The per-hop Algorithm 1 decision from the four *wrapped, unscaled*
 * both-representation offsets.  Returns 1 for "centered" (|da| and
 * |dg| both < 0.5 cells); else 0 with *dir_out set to the dominant-
 * dimension direction (0 up, 1 down, 2 left, 3 right).  Bit-exact
 * against the divide-based reference: the fast path only fires
 * outside the K_GUARD band (see above), everything else falls
 * through to the reference arithmetic itself. */
static int hop_decision(double wa0, double wg0, double wa1, double wg1,
                        double dr, double dp,
                        double half_dr, double half_dp, int *dir_out) {
    double awa0 = fabs(wa0), awg0 = fabs(wg0);
    double awa1 = fabs(wa1), awg1 = fabs(wg1);
    /* Representation pick: (|a1|/dr + |g1|/dp) < (|a0|/dr + |g0|/dp)
     * multiplied through by dr * dp > 0. */
    double p0 = awa0 * dp + awg0 * dr;
    double p1 = awa1 * dp + awg1 * dr;
    if (fabs(p1 - p0) > K_GUARD * (p0 + p1)) {
        int desc = p1 < p0;
        double wa = desc ? wa1 : wa0, wg = desc ? wg1 : wg0;
        double awa = desc ? awa1 : awa0, awg = desc ? awg1 : awg0;
        /* |a|/dr vs 0.5 is |a| vs dr/2 (dr/2 is exact). */
        double ma = awa - half_dr, mg = awg - half_dp;
        if (fabs(ma) > K_GUARD * (awa + half_dr)
            && fabs(mg) > K_GUARD * (awg + half_dp)) {
            if (ma < 0.0 && mg < 0.0) return 1;
            /* |a|/dr vs |g|/dp multiplied through by dr * dp. */
            double qa = awa * dp, qg = awg * dr;
            if (fabs(qa - qg) > K_GUARD * (qa + qg)) {
                *dir_out = (qa > qg) ? (wa > 0.0 ? 3 : 2)
                                     : (wg > 0.0 ? 0 : 1);
                return 0;
            }
        }
    }
    /* Near a boundary (or an exact tie): the reference decides. */
    double da0 = wa0 / dr, dg0 = wg0 / dp;
    double da1 = wa1 / dr, dg1 = wg1 / dp;
    double ada0 = fabs(da0), adg0 = fabs(dg0);
    double ada1 = fabs(da1), adg1 = fabs(dg1);
    int desc = (ada1 + adg1) < (ada0 + adg0);
    double da = desc ? da1 : da0, dg = desc ? dg1 : dg0;
    double ada = desc ? ada1 : ada0, adg = desc ? adg1 : adg0;
    if (ada < 0.5 && adg < 0.5) return 1;
    *dir_out = (ada > adg) ? (da > 0.0 ? 3 : 2) : (dg > 0.0 ? 0 : 1);
    return 0;
}

/* One Algorithm 1 walk per packet, identical decision structure to
 * BatchGeoRouter._route_chunk: coverage screen (dot product against
 * the destination radial, guard-banded exact re-test), both-
 * representation hop offsets, strict-< representation pick, dominant-
 * dimension direction, liveness / seam-revisit / path-capacity
 * fallback flags. */
void walk_chunk(
    int64_t n, int64_t max_hops, int64_t path_cap,
    int32_t full_torus, int32_t healthy,
    double theta, double slack_theta, double cos_in, double cos_out,
    double delta_raan, double delta_phase,
    const int64_t *src,
    const double *a0, const double *g0,
    const double *a1, const double *g1,
    const double *dest_lat, const double *dest_lon,
    const double *ux, const double *uy, const double *uz,
    const double *t_alpha, const double *t_gamma,
    const double *t_slat, const double *t_slon,
    const double *t_ux, const double *t_uy, const double *t_uz,
    const int32_t *t_nbr, const double *t_hop, const double *t_delay,
    const uint8_t *t_edge,
    uint8_t *delivered, uint8_t *degraded, uint8_t *fallback,
    double *delay_out, double *dist_out,
    int32_t *path_len, int32_t *paths)
{
    const double half_dr = 0.5 * delta_raan;   /* exact */
    const double half_dp = 0.5 * delta_phase;  /* exact */
    for (int64_t i = 0; i < n; i++) {
        int64_t cur = src[i];
        const double A0 = a0[i], G0 = g0[i];
        const double A1 = a1[i], G1 = g1[i];
        const double DLAT = dest_lat[i], DLON = dest_lon[i];
        const double UX = ux[i], UY = uy[i], UZ = uz[i];
        double delay = 0.0, dist = 0.0;
        int32_t *path = paths + i * path_cap;
        path[0] = (int32_t)cur;
        int resolved = 0;
        for (int64_t step = 0; step < max_hops; step++) {
            double dot = t_ux[cur] * UX + t_uy[cur] * UY
                       + t_uz[cur] * UZ;
            int covered;
            if (dot >= cos_in) {
                covered = 1;
            } else if (dot > cos_out) {
                covered = exact_angle(t_slat[cur], t_slon[cur],
                                      DLAT, DLON) <= theta;
            } else {
                covered = 0;
            }
            if (covered) {
                delivered[i] = 1;
                delay_out[i] = delay;
                dist_out[i] = dist;
                path_len[i] = (int32_t)(step + 1);
                resolved = 1;
                break;
            }
            double wa0 = wrap_signed_diff(A0 - t_alpha[cur]);
            double wg0 = wrap_signed_diff(G0 - t_gamma[cur]);
            double wa1 = wrap_signed_diff(A1 - t_alpha[cur]);
            double wg1 = wrap_signed_diff(G1 - t_gamma[cur]);
            int dir = 0;
            if (hop_decision(wa0, wg0, wa1, wg1,
                             delta_raan, delta_phase,
                             half_dr, half_dp, &dir)) {
                if (exact_angle(t_slat[cur], t_slon[cur],
                                DLAT, DLON) <= slack_theta) {
                    delivered[i] = 1;
                    degraded[i] = 1;
                    delay_out[i] = delay;
                    dist_out[i] = dist;
                    path_len[i] = (int32_t)(step + 1);
                } else {
                    /* Centered but not even nearly covered: the
                     * scalar walk deflects sideways -- recompute. */
                    fallback[i] = 1;
                }
                resolved = 1;
                break;
            }
            int64_t off = cur * 4 + dir;
            int32_t nxt = t_nbr[off];
            if (!healthy && !t_edge[off]) {
                fallback[i] = 1;
                resolved = 1;
                break;
            }
            if (!full_torus) {
                int revisit = 0;
                for (int64_t k = 0; k <= step; k++) {
                    if (path[k] == nxt) { revisit = 1; break; }
                }
                if (revisit) {
                    fallback[i] = 1;
                    resolved = 1;
                    break;
                }
            }
            if (step + 1 >= path_cap) {
                /* Path buffer exhausted (the caller trades capacity
                 * for allocation cost); the scalar recompute has no
                 * such limit. */
                fallback[i] = 1;
                resolved = 1;
                break;
            }
            /* t_delay is hop_km / c precomputed edgewise -- the same
             * two operands, the same correctly-rounded IEEE divide,
             * therefore the same quotient bits as the scalar's
             * per-hop division. */
            delay += t_delay[off];
            dist += t_hop[off];
            path[step + 1] = nxt;
            cur = (int64_t)nxt;
        }
        if (!resolved) {
            /* max_hops levels exhausted: undelivered, partial path. */
            delay_out[i] = delay;
            dist_out[i] = dist;
            path_len[i] = (int32_t)(max_hops + 1);
        }
    }
}
"""

#: -O2 without fast-math; contraction off so a*b+c never fuses into an
#: FMA the NumPy plane would have rounded in two steps.
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]

_lock = threading.Lock()
_cached: Optional[ctypes.CDLL] = None
_load_attempted = False


def kernel_source_hash() -> str:
    """Content hash naming the compiled object (cache key).

    Covers the compile flags too: a flag change (e.g. contraction
    settings) must never reuse an object built under different ones.
    """
    key = _KERNEL_SOURCE + "\x00" + " ".join(_CFLAGS)
    return hashlib.sha256(key.encode()).hexdigest()[:16]


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_KERNEL_CACHE")
    if configured:
        return configured
    return os.path.join(tempfile.gettempdir(), "repro-kernels")


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _configure(lib: ctypes.CDLL) -> ctypes.CDLL:
    pointer_args: List[type] = [ctypes.c_void_p] * 28
    lib.walk_chunk.argtypes = [
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_int32, ctypes.c_int32,
        ctypes.c_double, ctypes.c_double, ctypes.c_double,
        ctypes.c_double, ctypes.c_double, ctypes.c_double,
    ] + pointer_args
    lib.walk_chunk.restype = None
    return lib


def _compile() -> Optional[ctypes.CDLL]:
    compiler = _find_compiler()
    if compiler is None:
        return None
    directory = _cache_dir()
    so_path = os.path.join(directory,
                           f"walk_{kernel_source_hash()}.so")
    if os.path.exists(so_path):
        try:
            return _configure(ctypes.CDLL(so_path))
        except OSError:
            pass  # stale/corrupt cache entry; rebuild below
    try:
        os.makedirs(directory, exist_ok=True)
        fd, c_path = tempfile.mkstemp(suffix=".c", dir=directory)
        with os.fdopen(fd, "w") as handle:
            handle.write(_KERNEL_SOURCE)
        tmp_so = c_path[:-2] + ".so"
        result = subprocess.run(
            [compiler] + _CFLAGS + [c_path, "-o", tmp_so, "-lm"],
            capture_output=True, timeout=120)
        if result.returncode != 0:
            return None
        # Atomic publish so concurrent builders never load a half-
        # written object.
        os.replace(tmp_so, so_path)
        return _configure(ctypes.CDLL(so_path))
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        for leftover in (locals().get("c_path"),):
            if leftover and os.path.exists(leftover):
                try:
                    os.remove(leftover)
                except OSError:
                    pass


def load_kernel() -> Optional[ctypes.CDLL]:
    """The compiled walk kernel, or ``None`` when unavailable.

    ``None`` means: disabled via ``REPRO_NO_CKERNEL``, no C compiler
    on PATH, or the build failed -- callers fall back to the NumPy
    walk in every case.  The outcome (either way) is memoised.
    """
    global _cached, _load_attempted  # repro: ignore[shard-purity] -- once-only lazy compile; kernel is bit-exact vs the NumPy fallback
    if os.environ.get("REPRO_NO_CKERNEL"):
        return None
    with _lock:
        if not _load_attempted:
            _load_attempted = True
            _cached = _compile()
        return _cached
