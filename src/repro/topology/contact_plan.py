"""Contact plans: gateway/cell visibility schedules over time.

Operations around a LEO shell revolve around *contacts*: which
satellite serves a gateway (or covers a geospatial cell) during which
interval.  Gateways hand over between satellites continuously; the
contact plan is what a ground-segment scheduler (or the paper's
Fig. 11 "moving service areas" intuition) works from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..geo.cells import GeospatialCellGrid
from ..orbits.coverage import serving_satellite
from ..orbits.groundstations import GroundStation
from .grid import GridTopology


@dataclass(frozen=True)
class Contact:
    """One continuous service interval by one satellite."""

    satellite: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def gateway_contact_plan(topology: GridTopology,
                         station: GroundStation,
                         t_start: float, t_end: float,
                         step_s: float = 15.0) -> List[Contact]:
    """Access-satellite schedule for one gateway.

    Samples the access satellite every ``step_s`` and merges runs;
    gaps (no coverage) simply do not appear as contacts.
    """
    if t_end <= t_start or step_s <= 0:
        raise ValueError("need a positive window and step")
    contacts: List[Contact] = []
    current = -2
    run_start = t_start
    t = t_start
    while t <= t_end:
        sat = topology.station_access_satellite(station, t)
        if sat != current:
            if current >= 0:
                contacts.append(Contact(current, run_start, t))
            current = sat
            run_start = t
        t += step_s
    if current >= 0:
        contacts.append(Contact(current, run_start, min(t, t_end)))
    return contacts


def cell_coverage_plan(topology: GridTopology,
                       grid: GeospatialCellGrid,
                       cell: Tuple[int, int],
                       t_start: float, t_end: float,
                       step_s: float = 15.0) -> List[Contact]:
    """Which satellite covers a geospatial cell's centre, over time.

    This is the schedule SpaceCore paging implicitly uses: the cell is
    fixed, the covering satellite rotates through it (Fig. 11 turned
    inside out -- the *area* is stable, the server changes).
    """
    lat, lon = grid.cell_center(cell)
    contacts: List[Contact] = []
    current = -2
    run_start = t_start
    t = t_start
    while t <= t_end:
        sat = serving_satellite(topology.propagator, t, lat, lon)
        if sat >= 0 and not topology.is_up(sat):
            sat = -1
        if sat != current:
            if current >= 0:
                contacts.append(Contact(current, run_start, t))
            current = sat
            run_start = t
        t += step_s
    if current >= 0:
        contacts.append(Contact(current, run_start, min(t, t_end)))
    return contacts


@dataclass(frozen=True)
class ContactPlanStats:
    """Aggregates over one plan."""

    contact_count: int
    mean_duration_s: float
    coverage_fraction: float
    distinct_satellites: int


def summarize(contacts: List[Contact], t_start: float,
              t_end: float) -> ContactPlanStats:
    """Aggregate a contact plan into counts, durations, and coverage."""
    if not contacts:
        return ContactPlanStats(0, 0.0, 0.0, 0)
    covered = sum(c.duration_s for c in contacts)
    return ContactPlanStats(
        contact_count=len(contacts),
        mean_duration_s=covered / len(contacts),
        coverage_fraction=covered / (t_end - t_start),
        distinct_satellites=len({c.satellite for c in contacts}),
    )
