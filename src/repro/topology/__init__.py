"""Satellite network substrate: +Grid topology, links, routing."""

from .contact_plan import (
    Contact,
    ContactPlanStats,
    cell_coverage_plan,
    gateway_contact_plan,
    summarize,
)
from .grid import GridTopology
from .links import Link, LinkBudget, line_of_sight_clear, propagation_delay_s
from .routing import DijkstraRouter, GeospatialRouter, RouteResult, path_stretch
from .traffic import (
    ConcentrationComparison,
    TrafficLoad,
    compare_concentration,
    gravity_demand,
    load_peer_to_peer,
    load_to_gateways,
)

__all__ = [
    "Contact", "ContactPlanStats", "cell_coverage_plan",
    "gateway_contact_plan", "summarize",
    "GridTopology",
    "Link",
    "LinkBudget",
    "line_of_sight_clear",
    "propagation_delay_s",
    "DijkstraRouter",
    "GeospatialRouter",
    "RouteResult",
    "path_stretch",
    "ConcentrationComparison",
    "TrafficLoad",
    "compare_concentration",
    "gravity_demand",
    "load_peer_to_peer",
    "load_to_gateways",
]
