"""Constellation-level traffic analysis: ISL utilisation and hotspots.

S3.1's space-terrestrial asymmetry is ultimately a *flow concentration*
phenomenon: when all traffic must exit through a handful of gateways,
the ISLs around gateway-access satellites saturate long before the
rest of the constellation carries anything.  This module computes
per-link and per-satellite carried load for a demand matrix, under
either routing policy:

* ``to_gateways`` -- the bent-pipe/legacy pattern: every satellite's
  demand flows to its nearest gateway;
* ``peer_to_peer`` -- the SpaceCore pattern: demand flows between
  population centres directly over ISLs (Algorithm 1 paths).

The gravity-model demand generator weights satellite pairs by the
population under their footprints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..geo.population import PopulationGrid
from ..orbits.coverage import footprint_radius_km
from ..orbits.snapshot import snapshot_for
from .grid import GridTopology
from .routing import GeospatialRouter

LinkKey = Tuple[int, int]


def _link_key(a: int, b: int) -> LinkKey:
    return (a, b) if a < b else (b, a)


@dataclass
class TrafficLoad:
    """Carried load per link and per satellite (units/s)."""

    link_load: Dict[LinkKey, float] = field(default_factory=dict)
    satellite_load: Dict[int, float] = field(default_factory=dict)
    undelivered: float = 0.0

    def add_path(self, path: Sequence[int], demand: float) -> None:
        """Charge one flow's demand along every node and link of a path."""
        for node in path:
            self.satellite_load[node] = self.satellite_load.get(
                node, 0.0) + demand
        for a, b in zip(path, path[1:]):
            key = _link_key(a, b)
            self.link_load[key] = self.link_load.get(key, 0.0) + demand

    # -- statistics ---------------------------------------------------------------

    def busiest_links(self, count: int = 5) -> List[Tuple[LinkKey,
                                                          float]]:
        """The ``count`` most loaded links, descending."""
        return sorted(self.link_load.items(), key=lambda kv: -kv[1])[
            :count]

    def peak_to_mean_link_ratio(self) -> float:
        """The concentration metric: 1.0 is perfectly even."""
        if not self.link_load:
            return 0.0
        loads = list(self.link_load.values())
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 0.0

    def gini_coefficient(self) -> float:
        """Inequality of satellite loads (0 = even, ->1 = hotspots)."""
        loads = sorted(self.satellite_load.values())
        n = len(loads)
        if n == 0:
            return 0.0
        total = sum(loads)
        if total == 0:
            return 0.0
        cum = 0.0
        for i, value in enumerate(loads, start=1):
            cum += i * value
        return (2.0 * cum) / (n * total) - (n + 1.0) / n


def gravity_demand(topology: GridTopology, t: float,
                   population: Optional[PopulationGrid] = None,
                   top_satellites: int = 24,
                   total_demand: float = 1000.0
                   ) -> List[Tuple[int, int, float]]:
    """A gravity-model demand matrix between populated satellites.

    Picks the ``top_satellites`` satellites over the densest ground
    and generates pairwise demand proportional to the product of the
    populations beneath them.
    """
    population = population or PopulationGrid()
    c = topology.constellation
    radius = footprint_radius_km(c.altitude_km, c.min_elevation_deg)
    subpoints = snapshot_for(topology.propagator, t).subpoints
    weights = []
    for sat in range(c.total_satellites):
        lat, lon = subpoints[sat]
        weights.append((population.users_in_footprint(lat, lon, radius,
                                                      resolution=3),
                        sat))
    weights.sort(reverse=True)
    chosen = [(w, s) for w, s in weights[:top_satellites] if w > 0]
    if len(chosen) < 2:
        raise RuntimeError("not enough populated satellites for a "
                           "demand matrix")
    pair_weights = []
    for i, (wa, sa) in enumerate(chosen):
        for wb, sb in chosen[i + 1:]:
            pair_weights.append((sa, sb, wa * wb))
    scale = total_demand / sum(w for _, _, w in pair_weights)
    return [(a, b, w * scale) for a, b, w in pair_weights]


def load_to_gateways(topology: GridTopology, t: float,
                     demands: Sequence[Tuple[int, int, float]]
                     ) -> TrafficLoad:
    """Legacy pattern: all demand detours through nearest gateways.

    Each flow runs source -> gateway-access satellite (shortest path),
    then gateway -> gateway terrestrially, then access satellite ->
    destination.  The space segment carries both access legs.
    """
    if not topology.ground_stations:
        raise ValueError("gateway routing needs ground stations")
    graph = topology.snapshot_graph(t, include_ground=False)
    access = {}
    for gs in topology.ground_stations:
        sat = topology.station_access_satellite(gs, t)
        if sat >= 0:
            access[gs.name] = sat
    if not access:
        raise RuntimeError("no gateway has coverage at t")
    access_sats = list(access.values())
    load = TrafficLoad()
    paths_cache: Dict[int, Dict[int, List[int]]] = {}

    def shortest(a: int, b: int) -> Optional[List[int]]:
        if a not in paths_cache:
            paths_cache[a] = nx.single_source_dijkstra_path(
                graph, a, weight="weight")
        return paths_cache[a].get(b)

    for src, dst, demand in demands:
        for endpoint in (src, dst):
            best_path = None
            best_cost = math.inf
            for gateway_sat in access_sats:
                path = shortest(endpoint, gateway_sat)
                if path is not None and len(path) < best_cost:
                    best_cost = len(path)
                    best_path = path
            if best_path is None:
                load.undelivered += demand
            else:
                load.add_path(best_path, demand)
    return load


def load_peer_to_peer(topology: GridTopology, t: float,
                      demands: Sequence[Tuple[int, int, float]],
                      router: Optional[GeospatialRouter] = None
                      ) -> TrafficLoad:
    """SpaceCore pattern: demand rides Algorithm 1 paths end to end."""
    router = router or GeospatialRouter(topology)
    subpoints = snapshot_for(topology.propagator, t).subpoints
    load = TrafficLoad()
    for src, dst, demand in demands:
        dest_lat, dest_lon = subpoints[dst]
        result = router.route(src, float(dest_lat), float(dest_lon), t)
        if result.delivered:
            load.add_path(result.path, demand)
        else:
            load.undelivered += demand
    return load


@dataclass(frozen=True)
class ConcentrationComparison:
    """Gateway-routed vs peer-to-peer concentration metrics."""

    gateway_peak_to_mean: float
    peer_peak_to_mean: float
    gateway_gini: float
    peer_gini: float

    @property
    def asymmetry_removed(self) -> bool:
        """SpaceCore's claim: pushing the data plane to the edge
        removes the gateway funnels."""
        return (self.peer_peak_to_mean < self.gateway_peak_to_mean
                and self.peer_gini <= self.gateway_gini + 0.05)


def compare_concentration(topology: GridTopology, t: float = 0.0,
                          top_satellites: int = 16
                          ) -> ConcentrationComparison:
    """Run both patterns on the same gravity demand and compare."""
    demands = gravity_demand(topology, t,
                             top_satellites=top_satellites)
    gateway = load_to_gateways(topology, t, demands)
    peer = load_peer_to_peer(topology, t, demands)
    return ConcentrationComparison(
        gateway_peak_to_mean=gateway.peak_to_mean_link_ratio(),
        peer_peak_to_mean=peer.peak_to_mean_link_ratio(),
        gateway_gini=gateway.gini_coefficient(),
        peer_gini=peer.gini_coefficient(),
    )
