"""Routing: Algorithm 1 stateless geospatial relaying + Dijkstra baseline.

Algorithm 1 (S4.2) forwards a packet using only (a) the satellite's own
runtime (alpha, gamma) coordinates and (b) the destination's geospatial
cell embedded in its address -- no routing tables, no per-flow state.
Each hop moves one grid step in whichever dimension (inter-orbit alpha
or intra-orbit gamma) has the larger remaining hop count, choosing the
shorter way around the ring (the ``m/2 * d-alpha`` conditions in the
paper's listing are exactly this ring-shortest test, which
``wrap_signed`` performs).

The Dijkstra router is the stateful baseline used to measure path
stretch; it needs a global topology snapshot per time step -- the kind
of state SpaceCore wants satellites not to carry.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from ..constants import SPEED_OF_LIGHT_KM_S
from ..orbits.coordinates import (
    InclinedCoordinateSystem,
    central_angle,
    wrap_signed,
)
from ..orbits.coverage import coverage_half_angle
from ..orbits.snapshot import (
    ConstellationSnapshot,
    grid_neighbor_table,
    snapshot_for,
)
from .grid import GridTopology

#: Hop budget of the relay pipeline (Fig. 18b and every consumer that
#: routes across an orbital period).  Long detours on the large shells
#: can exceed the default 256-hop budget, so the scalar and batch
#: planes must share one constant: constructing one plane at 512 and
#: the other at its default silently halves the budget of whichever
#: plane the pipeline happens to route through (the parity bug this
#: constant fixes -- see tests/test_batch_routing.py).
RELAY_MAX_HOPS = 512

#: Sentinel distinguishing "scipy import not yet attempted" from "scipy
#: absent" in the memo below.
_SCIPY_UNRESOLVED = object()
_scipy_csgraph = _SCIPY_UNRESOLVED


def load_scipy_csgraph():
    """scipy's ``(csr_matrix, dijkstra)`` pair, or ``None``.

    ``None`` means scipy is not installed (it is an optional ``perf``
    extra) or the user opted out with ``REPRO_NO_SCIPY=1``; callers
    fall back to the networkx per-pair path.  The import outcome is
    memoised; the environment gate is re-read per call so tests can
    exercise both engines in one process.
    """
    global _scipy_csgraph
    if os.environ.get("REPRO_NO_SCIPY"):
        return None
    if _scipy_csgraph is _SCIPY_UNRESOLVED:
        try:
            from scipy.sparse import csr_matrix
            from scipy.sparse.csgraph import dijkstra
            _scipy_csgraph = (csr_matrix, dijkstra)
        except ImportError:
            _scipy_csgraph = None
    return _scipy_csgraph


def grid_edge_liveness(topology: GridTopology,
                       neighbors: np.ndarray) -> np.ndarray:
    """``(N, 4)`` liveness of every +Grid edge under current faults.

    ``neighbors`` is the :func:`grid_neighbor_table` of the topology's
    constellation; entry ``[s, d]`` is True when both endpoints of the
    edge from ``s`` in direction ``d`` are alive and the ISL carries
    no failure mark.  Shared by the batch router's next-hop tables and
    the Dijkstra baseline's sparse adjacency.
    """
    total = topology.constellation.total_satellites
    sat_up = np.ones(total, dtype=bool)
    failed_sats = topology.failed_satellites()
    if failed_sats:
        sat_up[sorted(failed_sats)] = False
    edge_up = sat_up[:, None] & sat_up[neighbors]
    for link in topology.failed_isls():
        pair = sorted(link)
        if len(pair) != 2:
            continue
        a, b = pair
        if not (0 <= a < total and 0 <= b < total):
            continue
        edge_up[a, neighbors[a] == b] = False
        edge_up[b, neighbors[b] == a] = False
    return edge_up


@dataclass
class RouteResult:
    """Outcome of routing one packet through the constellation."""

    delivered: bool
    path: List[int] = field(default_factory=list)
    delay_s: float = 0.0
    distance_km: float = 0.0
    degraded: bool = False  # delivered below the nominal elevation mask

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


class GeospatialRouter:
    """Stateless geospatial relaying (Algorithm 1).

    Every decision uses only local knowledge: the satellite's runtime
    coordinates (which self-calibrate orbit perturbations -- the J4
    experiment of Fig. 18b) and the destination coordinates derived
    from the packet's geospatial address.
    """

    def __init__(self, topology: GridTopology, max_hops: int = 256):
        self.topology = topology
        c = topology.constellation
        self.system = InclinedCoordinateSystem(c.inclination_rad)
        self.coverage_angle = coverage_half_angle(c.altitude_km,
                                                  c.min_elevation_deg)
        #: Positive slack accepts delivery slightly outside the nominal
        #: footprint (serving at a lower elevation angle) instead of
        #: oscillating between two near-covering satellites.
        self.degraded_slack = 1.6
        self.max_hops = max_hops
        # Per-snapshot memo of ISL lengths: packets routed at the same
        # epoch traverse the same few hundred grid edges over and over.
        self._edge_snap: Optional[ConstellationSnapshot] = None
        self._edge_km: dict = {}

    # -- per-hop decision (the Algorithm 1 listing) ------------------------------

    def _snapshot(self, t: float) -> ConstellationSnapshot:
        """The cached epoch snapshot every per-hop read indexes into."""
        return snapshot_for(self.topology.propagator, t)

    def covers(self, sat: int, dest_lat: float, dest_lon: float,
               t: float) -> bool:
        """Line 1-2 of Algorithm 1: does this satellite cover D?"""
        return self._covers(self._snapshot(t), sat, dest_lat, dest_lon)

    def _covers(self, snap: ConstellationSnapshot, sat: int,
                dest_lat: float, dest_lon: float) -> bool:
        sub = snap.subpoints
        return (central_angle(sub[sat, 0], sub[sat, 1],
                              dest_lat, dest_lon)
                <= self.coverage_angle)

    def _hop_offsets(self, sat: int, dest_lat: float, dest_lon: float,
                     t: float) -> Tuple[float, float]:
        """Remaining (alpha, gamma) offsets in units of grid hops.

        Considers both torus representations of the destination and
        keeps the closer one, since a satellite on its descending arc
        covers the same ground as an ascending satellite of a mirrored
        plane.
        """
        return self._hop_offsets_snap(
            self._snapshot(t), sat,
            self.system.both_representations(dest_lat, dest_lon))

    def _hop_offsets_snap(self, snap: ConstellationSnapshot, sat: int,
                          dest_reps: Sequence[Tuple[float, float]]
                          ) -> Tuple[float, float]:
        c = self.topology.constellation
        alpha_s = snap.raan_ecef[sat]
        gamma_s = snap.arg_latitude[sat]
        best: Optional[Tuple[float, float]] = None
        best_metric = math.inf
        for alpha_d, gamma_d in dest_reps:
            da = wrap_signed(alpha_d - alpha_s) / c.delta_raan
            dg = wrap_signed(gamma_d - gamma_s) / c.delta_phase
            metric = abs(da) + abs(dg)
            if metric < best_metric:
                best_metric = metric
                best = (da, dg)
        assert best is not None
        return best

    def next_hop(self, sat: int, dest_lat: float, dest_lon: float,
                 t: float) -> Optional[int]:
        """Lines 3-10 of Algorithm 1: pick the forwarding direction.

        Returns the neighbour's flat index, or None when this satellite
        is already the best grid position (deliver here).
        """
        return self._next_hop_snap(
            self._snapshot(t), sat,
            self.system.both_representations(dest_lat, dest_lon))

    def _next_hop_snap(self, snap: ConstellationSnapshot, sat: int,
                       dest_reps: Sequence[Tuple[float, float]]
                       ) -> Optional[int]:
        da, dg = self._hop_offsets_snap(snap, sat, dest_reps)
        if abs(da) < 0.5 and abs(dg) < 0.5:
            return None
        neighbors = self.topology.directional_neighbors(sat)
        if abs(da) > abs(dg):
            direction = "right" if da > 0 else "left"
        else:
            direction = "up" if dg > 0 else "down"
        return neighbors[direction]

    # -- end-to-end ---------------------------------------------------------------

    def route(self, src_sat: int, dest_lat: float, dest_lon: float,
              t: float,
              avoid_links: Optional[Set[FrozenSet[int]]] = None
              ) -> RouteResult:
        """Forward hop by hop from ``src_sat`` to the destination's cell.

        Failed satellites/ISLs deflect the packet: when the preferred
        direction is dead, the packet takes the live neighbour that
        minimises the remaining hop metric (and never revisits a node,
        bounding detours).  ``avoid_links`` marks extra links to treat
        as down -- e.g. links the packet layer found to be inside a
        Gilbert-Elliott loss burst -- so degraded links can be routed
        around without mutating the shared topology.
        """
        topo = self.topology
        # One cached snapshot and one destination (alpha, gamma)
        # conversion serve every hop of this packet.
        snap = self._snapshot(t)
        dest_reps = self.system.both_representations(dest_lat, dest_lon)
        path = [src_sat]
        visited = {src_sat}
        delay = 0.0
        distance = 0.0
        current = src_sat
        for _ in range(self.max_hops):
            if self._covers(snap, current, dest_lat, dest_lon):
                return RouteResult(True, path, delay, distance)
            preferred = self._next_hop_snap(snap, current, dest_reps)
            if preferred is None:
                # Closest grid position, but the footprint misses D
                # (low elevation); deliver degraded rather than loop.
                if self._nearly_covers_snap(snap, current, dest_lat,
                                            dest_lon):
                    return RouteResult(True, path, delay, distance,
                                       degraded=True)
                preferred = self._best_live_neighbor_snap(
                    snap, current, dest_reps, visited, avoid_links)
            if (preferred is None or preferred in visited
                    or not topo.isl_up(current, preferred)
                    or (avoid_links
                        and frozenset((current, preferred))
                        in avoid_links)):
                preferred = self._best_live_neighbor_snap(
                    snap, current, dest_reps, visited, avoid_links)
            if preferred is None:
                return RouteResult(False, path, delay, distance)
            hop_km = self._hop_km(snap, current, preferred)
            delay += hop_km / SPEED_OF_LIGHT_KM_S
            distance += hop_km
            current = preferred
            path.append(current)
            visited.add(current)
        return RouteResult(False, path, delay, distance)

    def _hop_km(self, snap: ConstellationSnapshot, a: int, b: int) -> float:
        """Length of the a--b ISL at this epoch, memoised per snapshot."""
        if self._edge_snap is not snap:
            self._edge_snap = snap
            self._edge_km = {}
        key = (a, b) if a < b else (b, a)
        d = self._edge_km.get(key)
        if d is None:
            pos = snap.positions_ecef
            dx = pos[a, 0] - pos[b, 0]
            dy = pos[a, 1] - pos[b, 1]
            dz = pos[a, 2] - pos[b, 2]
            d = math.sqrt(dx * dx + dy * dy + dz * dz)
            self._edge_km[key] = d
        return d

    def _nearly_covers(self, sat: int, dest_lat: float, dest_lon: float,
                       t: float) -> bool:
        return self._nearly_covers_snap(self._snapshot(t), sat,
                                        dest_lat, dest_lon)

    def _nearly_covers_snap(self, snap: ConstellationSnapshot, sat: int,
                            dest_lat: float, dest_lon: float) -> bool:
        sub = snap.subpoints
        return (central_angle(sub[sat, 0], sub[sat, 1],
                              dest_lat, dest_lon)
                <= self.coverage_angle * self.degraded_slack)

    def _best_live_neighbor(self, sat: int, dest_lat: float,
                            dest_lon: float, t: float,
                            visited: set) -> Optional[int]:
        """Greedy deflection: live unvisited neighbour nearest the goal."""
        return self._best_live_neighbor_snap(
            self._snapshot(t), sat,
            self.system.both_representations(dest_lat, dest_lon), visited)

    def _best_live_neighbor_snap(self, snap: ConstellationSnapshot,
                                 sat: int,
                                 dest_reps: Sequence[Tuple[float, float]],
                                 visited: set,
                                 avoid_links: Optional[
                                     Set[FrozenSet[int]]] = None
                                 ) -> Optional[int]:
        best = None
        best_metric = math.inf
        for nbr in self.topology.isl_neighbors(sat):
            if nbr in visited:
                continue
            if avoid_links and frozenset((sat, nbr)) in avoid_links:
                continue
            da, dg = self._hop_offsets_snap(snap, nbr, dest_reps)
            metric = abs(da) + abs(dg)
            if metric < best_metric:
                best_metric = metric
                best = nbr
        return best


class DijkstraRouter:
    """Stateful shortest-path baseline over a topology snapshot.

    Graphs are kept in a bounded LRU keyed by ``(t, fault_epoch)`` so
    workloads that alternate between a handful of timesteps (e.g.
    ideal-vs-J4 sweeps interleaving the same sample epochs) stop
    rebuilding the same snapshot graph on every switch.  The router
    also registers as a fault listener: any failure-state change
    actively drops every cached graph/adjacency, so chaos scenarios
    can neither read stale liveness nor pin dead-epoch graphs in
    memory until they age out of the LRU.

    :meth:`route_many` answers whole source/destination batches at
    once through ``scipy.sparse.csgraph.dijkstra`` over the +Grid
    adjacency (one multi-source run per unique source); without scipy
    (an optional extra) it degrades to the per-pair networkx walk.
    """

    def __init__(self, topology: GridTopology, cache_size: int = 16):
        self.topology = topology
        self._cache_size = max(1, cache_size)
        self._graph_cache: "OrderedDict[Tuple[float, int], nx.Graph]" = (
            OrderedDict())
        #: (t, fault_epoch) -> (csr delay-weighted adjacency,
        #: neighbor table, per-edge km, per-edge liveness or None).
        self._matrix_cache: "OrderedDict[Tuple[float, int], tuple]" = (
            OrderedDict())
        topology.add_fault_listener(self.invalidate)

    def invalidate(self) -> None:
        """Drop every cached graph (fault listeners call this)."""
        self._graph_cache.clear()
        self._matrix_cache.clear()

    def _graph(self, t: float) -> nx.Graph:
        # Keyed by (t, fault epoch): a graph embeds liveness, so any
        # failure-injection change makes a new key and old entries age
        # out of the LRU instead of being served stale.
        key = (t, self.topology.fault_epoch)
        graph = self._graph_cache.get(key)
        if graph is not None:
            self._graph_cache.move_to_end(key)
            return graph
        graph = self.topology.snapshot_graph(t, include_ground=False)
        self._graph_cache[key] = graph
        while len(self._graph_cache) > self._cache_size:
            self._graph_cache.popitem(last=False)
        return graph

    def route(self, src_sat: int, dst_sat: int, t: float) -> RouteResult:
        """Shortest path between two satellites on the snapshot graph."""
        graph = self._graph(t)
        if src_sat not in graph or dst_sat not in graph:
            return RouteResult(False)
        try:
            path = nx.shortest_path(graph, src_sat, dst_sat,
                                    weight="weight")
        except nx.NetworkXNoPath:
            return RouteResult(False)
        delay = 0.0
        distance = 0.0
        for a, b in zip(path, path[1:]):
            delay += graph[a][b]["weight"]
            distance += graph[a][b]["distance_km"]
        return RouteResult(True, list(path), delay, distance)

    # -- batched shortest paths ------------------------------------------------

    def _adjacency(self, t: float) -> tuple:
        """Sparse +Grid adjacency (delay-weighted) for one epoch."""
        key = (float(t), self.topology.fault_epoch)
        cached = self._matrix_cache.get(key)
        if cached is not None:
            self._matrix_cache.move_to_end(key)
            return cached
        loaded = load_scipy_csgraph()
        assert loaded is not None  # callers gate on load_scipy_csgraph
        csr_matrix, _ = loaded
        c = self.topology.constellation
        total = c.total_satellites
        snapshot = snapshot_for(self.topology.propagator, t)
        neighbors = grid_neighbor_table(c)
        hop_km = snapshot.hop_lengths_km()
        if self.topology.has_topology_faults:
            edge_up = grid_edge_liveness(self.topology, neighbors)
            live = edge_up.ravel()
        else:
            edge_up = None
            live = slice(None)
        rows = np.repeat(np.arange(total), neighbors.shape[1])[live]
        cols = neighbors.ravel()[live]
        weights = (hop_km / SPEED_OF_LIGHT_KM_S).ravel()[live]
        matrix = csr_matrix((weights, (rows, cols)),
                            shape=(total, total))
        entry = (matrix, neighbors, hop_km, edge_up)
        self._matrix_cache[key] = entry
        while len(self._matrix_cache) > self._cache_size:
            self._matrix_cache.popitem(last=False)
        return entry

    def route_many(self, src_sats: Sequence[int],
                   dst_sats: Sequence[int], t: float) -> List[RouteResult]:
        """Shortest paths for ``(src, dst)`` satellite pairs in bulk.

        With scipy available this runs one multi-source
        ``csgraph.dijkstra`` per unique source over the sparse +Grid
        adjacency and reconstructs each pair's path from the
        predecessor matrix; pairs sharing a source share the search.
        Delays/distances match the per-pair networkx :meth:`route`
        (same edge weights); tie-broken equal-delay paths may differ
        node-for-node, as with any shortest-path implementation.
        """
        srcs = [int(s) for s in src_sats]
        dsts = [int(d) for d in dst_sats]
        if len(srcs) != len(dsts):
            raise ValueError("src/dst sequences must have equal length")
        if not srcs:
            return []
        if load_scipy_csgraph() is None:
            return [self.route(s, d, t) for s, d in zip(srcs, dsts)]
        _, dijkstra = load_scipy_csgraph()
        matrix, neighbors, hop_km, edge_up = self._adjacency(t)
        total = matrix.shape[0]
        failed = self.topology.failed_satellites()
        unique = sorted({s for s in srcs if 0 <= s < total})
        index_of = {s: k for k, s in enumerate(unique)}
        if unique:
            dist, pred = dijkstra(matrix, directed=True,
                                  indices=unique,
                                  return_predecessors=True)
        results: List[RouteResult] = []
        for s, d in zip(srcs, dsts):
            if (s not in index_of or not 0 <= d < total
                    or s in failed or d in failed):
                results.append(RouteResult(False))
                continue
            row = index_of[s]
            if not np.isfinite(dist[row, d]):
                results.append(RouteResult(False))
                continue
            path = [d]
            node = d
            while node != s:
                node = int(pred[row, node])
                path.append(node)
            path.reverse()
            distance = 0.0
            for a, b in zip(path, path[1:]):
                hops = hop_km[a][neighbors[a] == b]
                distance += float(hops[0])
            results.append(RouteResult(True, path,
                                       float(dist[row, d]), distance))
        return results


def path_stretch(geo: RouteResult, baseline: RouteResult) -> float:
    """Delay stretch of the stateless route over the stateful optimum."""
    if not (geo.delivered and baseline.delivered):
        raise ValueError("both routes must be delivered to compare")
    if baseline.delay_s == 0:
        return 1.0
    return geo.delay_s / baseline.delay_s
