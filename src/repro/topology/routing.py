"""Routing: Algorithm 1 stateless geospatial relaying + Dijkstra baseline.

Algorithm 1 (S4.2) forwards a packet using only (a) the satellite's own
runtime (alpha, gamma) coordinates and (b) the destination's geospatial
cell embedded in its address -- no routing tables, no per-flow state.
Each hop moves one grid step in whichever dimension (inter-orbit alpha
or intra-orbit gamma) has the larger remaining hop count, choosing the
shorter way around the ring (the ``m/2 * d-alpha`` conditions in the
paper's listing are exactly this ring-shortest test, which
``wrap_signed`` performs).

The Dijkstra router is the stateful baseline used to measure path
stretch; it needs a global topology snapshot per time step -- the kind
of state SpaceCore wants satellites not to carry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx

from ..orbits.coordinates import (
    InclinedCoordinateSystem,
    central_angle,
    wrap_signed,
)
from ..orbits.coverage import coverage_half_angle
from .grid import GridTopology


@dataclass
class RouteResult:
    """Outcome of routing one packet through the constellation."""

    delivered: bool
    path: List[int] = field(default_factory=list)
    delay_s: float = 0.0
    distance_km: float = 0.0
    degraded: bool = False  # delivered below the nominal elevation mask

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


class GeospatialRouter:
    """Stateless geospatial relaying (Algorithm 1).

    Every decision uses only local knowledge: the satellite's runtime
    coordinates (which self-calibrate orbit perturbations -- the J4
    experiment of Fig. 18b) and the destination coordinates derived
    from the packet's geospatial address.
    """

    def __init__(self, topology: GridTopology, max_hops: int = 256):
        self.topology = topology
        c = topology.constellation
        self.system = InclinedCoordinateSystem(c.inclination_rad)
        self.coverage_angle = coverage_half_angle(c.altitude_km,
                                                  c.min_elevation_deg)
        #: Positive slack accepts delivery slightly outside the nominal
        #: footprint (serving at a lower elevation angle) instead of
        #: oscillating between two near-covering satellites.
        self.degraded_slack = 1.6
        self.max_hops = max_hops

    # -- per-hop decision (the Algorithm 1 listing) ------------------------------

    def covers(self, sat: int, dest_lat: float, dest_lon: float,
               t: float) -> bool:
        """Line 1-2 of Algorithm 1: does this satellite cover D?"""
        plane, slot = self.topology.constellation.plane_slot(sat)
        sat_lat, sat_lon = self.topology.propagator.state(
            plane, slot, t).subpoint()
        return (central_angle(sat_lat, sat_lon, dest_lat, dest_lon)
                <= self.coverage_angle)

    def _hop_offsets(self, sat: int, dest_lat: float, dest_lon: float,
                     t: float) -> Tuple[float, float]:
        """Remaining (alpha, gamma) offsets in units of grid hops.

        Considers both torus representations of the destination and
        keeps the closer one, since a satellite on its descending arc
        covers the same ground as an ascending satellite of a mirrored
        plane.
        """
        c = self.topology.constellation
        plane, slot = c.plane_slot(sat)
        state = self.topology.propagator.state(plane, slot, t)
        alpha_s = state.raan_ecef
        gamma_s = state.arg_latitude
        best: Optional[Tuple[float, float]] = None
        best_metric = math.inf
        for alpha_d, gamma_d in self.system.both_representations(
                dest_lat, dest_lon):
            da = wrap_signed(alpha_d - alpha_s) / c.delta_raan
            dg = wrap_signed(gamma_d - gamma_s) / c.delta_phase
            metric = abs(da) + abs(dg)
            if metric < best_metric:
                best_metric = metric
                best = (da, dg)
        assert best is not None
        return best

    def next_hop(self, sat: int, dest_lat: float, dest_lon: float,
                 t: float) -> Optional[int]:
        """Lines 3-10 of Algorithm 1: pick the forwarding direction.

        Returns the neighbour's flat index, or None when this satellite
        is already the best grid position (deliver here).
        """
        da, dg = self._hop_offsets(sat, dest_lat, dest_lon, t)
        if abs(da) < 0.5 and abs(dg) < 0.5:
            return None
        neighbors = self.topology.directional_neighbors(sat)
        if abs(da) > abs(dg):
            direction = "right" if da > 0 else "left"
        else:
            direction = "up" if dg > 0 else "down"
        return neighbors[direction]

    # -- end-to-end ---------------------------------------------------------------

    def route(self, src_sat: int, dest_lat: float, dest_lon: float,
              t: float) -> RouteResult:
        """Forward hop by hop from ``src_sat`` to the destination's cell.

        Failed satellites/ISLs deflect the packet: when the preferred
        direction is dead, the packet takes the live neighbour that
        minimises the remaining hop metric (and never revisits a node,
        bounding detours).
        """
        topo = self.topology
        path = [src_sat]
        visited = {src_sat}
        delay = 0.0
        distance = 0.0
        current = src_sat
        for _ in range(self.max_hops):
            if self.covers(current, dest_lat, dest_lon, t):
                return RouteResult(True, path, delay, distance)
            preferred = self.next_hop(current, dest_lat, dest_lon, t)
            if preferred is None:
                # Closest grid position, but the footprint misses D
                # (low elevation); deliver degraded rather than loop.
                if self._nearly_covers(current, dest_lat, dest_lon, t):
                    return RouteResult(True, path, delay, distance,
                                       degraded=True)
                preferred = self._best_live_neighbor(current, dest_lat,
                                                     dest_lon, t, visited)
            if (preferred is None or preferred in visited
                    or not topo.isl_up(current, preferred)):
                preferred = self._best_live_neighbor(current, dest_lat,
                                                     dest_lon, t, visited)
            if preferred is None:
                return RouteResult(False, path, delay, distance)
            hop_km = topo.isl_distance_km(current, preferred, t)
            delay += topo.isl_delay_s(current, preferred, t)
            distance += hop_km
            current = preferred
            path.append(current)
            visited.add(current)
        return RouteResult(False, path, delay, distance)

    def _nearly_covers(self, sat: int, dest_lat: float, dest_lon: float,
                       t: float) -> bool:
        plane, slot = self.topology.constellation.plane_slot(sat)
        sat_lat, sat_lon = self.topology.propagator.state(
            plane, slot, t).subpoint()
        return (central_angle(sat_lat, sat_lon, dest_lat, dest_lon)
                <= self.coverage_angle * self.degraded_slack)

    def _best_live_neighbor(self, sat: int, dest_lat: float,
                            dest_lon: float, t: float,
                            visited: set) -> Optional[int]:
        """Greedy deflection: live unvisited neighbour nearest the goal."""
        best = None
        best_metric = math.inf
        for nbr in self.topology.isl_neighbors(sat):
            if nbr in visited:
                continue
            da, dg = self._hop_offsets(nbr, dest_lat, dest_lon, t)
            metric = abs(da) + abs(dg)
            if metric < best_metric:
                best_metric = metric
                best = nbr
        return best


class DijkstraRouter:
    """Stateful shortest-path baseline over a topology snapshot."""

    def __init__(self, topology: GridTopology):
        self.topology = topology
        self._graph_cache: Optional[Tuple[float, nx.Graph]] = None

    def _graph(self, t: float) -> nx.Graph:
        if self._graph_cache is None or self._graph_cache[0] != t:
            self._graph_cache = (t, self.topology.snapshot_graph(
                t, include_ground=False))
        return self._graph_cache[1]

    def route(self, src_sat: int, dst_sat: int, t: float) -> RouteResult:
        """Shortest path between two satellites on the snapshot graph."""
        graph = self._graph(t)
        if src_sat not in graph or dst_sat not in graph:
            return RouteResult(False)
        try:
            path = nx.shortest_path(graph, src_sat, dst_sat,
                                    weight="weight")
        except nx.NetworkXNoPath:
            return RouteResult(False)
        delay = 0.0
        distance = 0.0
        for a, b in zip(path, path[1:]):
            delay += graph[a][b]["weight"]
            distance += graph[a][b]["distance_km"]
        return RouteResult(True, list(path), delay, distance)


def path_stretch(geo: RouteResult, baseline: RouteResult) -> float:
    """Delay stretch of the stateless route over the stateful optimum."""
    if not (geo.delivered and baseline.delivered):
        raise ValueError("both routes must be delivered to compare")
    if baseline.delay_s == 0:
        return 1.0
    return geo.delay_s / baseline.delay_s
