"""The Solution abstraction: placement + flows + state residency.

Every system the paper compares (5G NTN, SkyCore, Baoyun, DPCM,
SpaceCore) is described by:

* which NF roles run **on the satellite** (the Fig. 6 function split);
* which message flow each procedure uses (Fig. 9 legacy vs Fig. 16
  localized);
* which mobility procedures LEO satellite motion triggers;
* what state the satellite **stores durably** (the Fig. 19 attack
  surface) and how state synchronisation adds messages (SkyCore's
  broadcasts, DPCM's device replica updates);
* whether the UE's IP survives satellite mobility (Fig. 21).

The message-classification helpers below are what the signaling-storm
arithmetic consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..constants import (
    RRC_INACTIVITY_TIMEOUT_S,
    SESSION_INTERARRIVAL_S,
)
from ..fiveg.messages import MessageTemplate, ProcedureKind, Role


class Side(Enum):
    """Where a message endpoint physically sits."""

    DEVICE = "device"
    SPACE = "space"
    GROUND = "ground"


class StateResidency(Enum):
    """How much sensitive state a satellite holds durably (Fig. 19)."""

    NONE = "none"                      # SpaceCore: ephemeral only
    ACTIVE_CONTEXTS = "active"         # Baoyun/DPCM: registered users
    ALL_SUBSCRIBERS = "all"            # SkyCore: pre-provisioned vectors
    RELAY_ONLY = "relay"               # 5G NTN: radio contexts only


#: Fraction of UEs holding an active radio connection at any moment:
#: a session every 106.9 s held ~12.5 s before inactivity release.
ACTIVE_FRACTION = RRC_INACTIVITY_TIMEOUT_S / SESSION_INTERARRIVAL_S


@dataclass(frozen=True)
class Solution:
    """A full system design point."""

    name: str
    on_board: FrozenSet[Role]
    flows: Dict[ProcedureKind, List[MessageTemplate]]
    mobility_registration_per_pass: bool
    handover_per_pass: bool = True
    state_residency: StateResidency = StateResidency.ACTIVE_CONTEXTS
    #: Extra ISL messages per state change for proactive sync
    #: (SkyCore's neighbourhood broadcast).
    sync_fanout: int = 0
    #: Extra radio messages per procedure to refresh a device replica
    #: (DPCM keeps the device copy coherent).
    replica_update_messages: int = 0
    #: Does the UE's IP survive satellite mobility? (Fig. 21)
    ip_stable_under_satellite_mobility: bool = False
    #: Per-procedure crypto overhead on the satellite (Fig. 18a), s.
    crypto_overhead_s: float = 0.0
    #: Legacy designs drag *every* camped UE through the handover
    #: machinery when its serving satellite changes (S3.2: "these
    #: static users have to initiate procedures in Figure 9c-d");
    #: SpaceCore only touches the actively connected minority.
    handover_all_users: bool = True
    #: Multiplier on per-message satellite CPU cost.  SkyCore's
    #: refactored single-box core processes messages far cheaper than
    #: a stock open5gs stack (its headline contribution).
    processing_efficiency: float = 1.0

    # -- message classification ---------------------------------------------------

    def side_of(self, role: Role) -> Side:
        """Physical location (device/space/ground) of an NF role."""
        if role is Role.UE:
            return Side.DEVICE
        return Side.SPACE if role in self.on_board else Side.GROUND

    def message_sides(self, message: MessageTemplate) -> Tuple[Side, Side]:
        """(source side, destination side) of one message."""
        return self.side_of(message.src), self.side_of(message.dst)

    def crosses_boundary(self, message: MessageTemplate) -> bool:
        """True when the message must traverse ISLs + a ground-space link.

        Device-to-space traffic rides the local radio leg; anything
        touching the ground side crosses.
        """
        sides = set(self.message_sides(message))
        return Side.GROUND in sides and sides != {Side.GROUND}

    def satellite_messages(self, flow: Iterable[MessageTemplate]) -> int:
        """Messages the serving satellite originates/terminates/relays.

        Every message with a device or space endpoint touches the
        serving satellite (device traffic terminates on, or is relayed
        by, the satellite radio).
        """
        count = 0
        for message in flow:
            sides = set(self.message_sides(message))
            if Side.SPACE in sides or Side.DEVICE in sides:
                count += 1
        return count

    def crossing_messages(self, flow: Iterable[MessageTemplate]) -> int:
        """How many messages of a flow cross the space-ground boundary."""
        return sum(1 for m in flow if self.crosses_boundary(m))

    def ground_messages(self, flow: Iterable[MessageTemplate]) -> int:
        """Messages the ground station must process."""
        count = 0
        for message in flow:
            sides = set(self.message_sides(message))
            if Side.GROUND in sides:
                count += 1
        return count

    # -- per-procedure shortcuts ----------------------------------------------------

    def flow(self, kind: ProcedureKind) -> List[MessageTemplate]:
        """The message flow this solution uses for a procedure."""
        return self.flows[kind]

    def procedure_rates_per_user(self, dwell_s: float
                                 ) -> Dict[ProcedureKind, float]:
        """Events/second a single served UE generates (S3.1-S3.2).

        * session establishments: every 106.9 s;
        * handovers: every pass -- all camped UEs for legacy designs,
          only the actively connected minority for SpaceCore;
        * mobility registrations: *every* UE, every pass, when the
          solution binds tracking areas to satellites;
        * initial registrations: once a day (power cycle scale).
        """
        handover_fraction = (1.0 if self.handover_all_users
                             else ACTIVE_FRACTION)
        rates = {
            ProcedureKind.SESSION_ESTABLISHMENT:
                1.0 / SESSION_INTERARRIVAL_S,
            ProcedureKind.HANDOVER:
                (handover_fraction / dwell_s if self.handover_per_pass
                 else 0.0),
            ProcedureKind.MOBILITY_REGISTRATION:
                (1.0 / dwell_s if self.mobility_registration_per_pass
                 else 0.0),
            ProcedureKind.INITIAL_REGISTRATION: 1.0 / 86400.0,
        }
        return rates
