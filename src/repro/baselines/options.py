"""The four core-function placement options of Fig. 6 (S3).

The what-if analysis of S3 progressively pushes functions into the
satellite:

* Option 1 -- radio access only (5G NTN regeneration mode);
* Option 2 -- + data session (UPF), planned in the 5G roadmap;
* Option 3 -- + mobility (AMF/SMF), the Baoyun configuration;
* Option 4 -- + security (AUSF/UDM/PCF): everything in orbit.

All four run the *legacy stateful* flows of Fig. 9; what changes is
which messages cross the space-ground boundary and which mobility
procedures satellite motion triggers.  Fig. 10 sweeps exactly these
four design points.
"""

from __future__ import annotations

from typing import Tuple

from ..fiveg.messages import LEGACY_FLOWS, Role
from .base import Solution, StateResidency

_RADIO = frozenset({Role.RAN, Role.RAN2})


def option1_radio_only() -> Solution:
    """Fig. 6a: satellites carry only the radio access."""
    return Solution(
        name="Option 1 (radio only)",
        on_board=_RADIO,
        flows=dict(LEGACY_FLOWS),
        mobility_registration_per_pass=False,
        state_residency=StateResidency.RELAY_ONLY,
        ip_stable_under_satellite_mobility=True,
    )


def option2_data_session() -> Solution:
    """Fig. 6b: radio plus a local UPF for data sessions."""
    return Solution(
        name="Option 2 (data session)",
        on_board=_RADIO | frozenset({Role.UPF}),
        flows=dict(LEGACY_FLOWS),
        mobility_registration_per_pass=False,
        state_residency=StateResidency.RELAY_ONLY,
    )


def option3_session_mobility() -> Solution:
    """Fig. 6c: the Baoyun split with AMF/SMF on board."""
    return Solution(
        name="Option 3 (session & mobility)",
        on_board=_RADIO | frozenset({Role.UPF, Role.AMF, Role.SMF}),
        flows=dict(LEGACY_FLOWS),
        mobility_registration_per_pass=True,
        state_residency=StateResidency.ACTIVE_CONTEXTS,
    )


def option4_all_functions() -> Solution:
    """Fig. 6d: the whole core, security included, in orbit."""
    return Solution(
        name="Option 4 (all functions)",
        on_board=_RADIO | frozenset({Role.UPF, Role.AMF, Role.SMF,
                                     Role.AUSF, Role.UDM, Role.PCF,
                                     Role.ANCHOR_UPF}),
        flows=dict(LEGACY_FLOWS),
        mobility_registration_per_pass=True,
        state_residency=StateResidency.ALL_SUBSCRIBERS,
    )


#: Fig. 10's column order.
ALL_OPTIONS = (option1_radio_only, option2_data_session,
               option3_session_mobility, option4_all_functions)

OPTION_LABELS: Tuple[str, ...] = ("Radio only", "Data session",
                                  "Session & mobility", "All functions")
