"""Baseline systems and placement options the paper compares against."""

from .base import ACTIVE_FRACTION, Side, Solution, StateResidency
from .options import (
    ALL_OPTIONS,
    OPTION_LABELS,
    option1_radio_only,
    option2_data_session,
    option3_session_mobility,
    option4_all_functions,
)
from .solutions import (
    ALL_SOLUTIONS,
    SPACECORE_CRYPTO_OVERHEAD_S,
    baoyun,
    dpcm,
    fiveg_ntn,
    skycore,
    solution_by_name,
    spacecore,
)

__all__ = [
    "ACTIVE_FRACTION", "Side", "Solution", "StateResidency",
    "ALL_OPTIONS", "OPTION_LABELS", "option1_radio_only",
    "option2_data_session", "option3_session_mobility",
    "option4_all_functions",
    "ALL_SOLUTIONS", "SPACECORE_CRYPTO_OVERHEAD_S", "baoyun", "dpcm",
    "fiveg_ntn", "skycore", "solution_by_name", "spacecore",
]
