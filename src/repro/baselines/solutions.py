"""The five systems of the evaluation (S6.1) as Solution design points.

* **5G NTN** [15, 16]: regeneration mode -- the satellite is radio
  access only (Fig. 6a); every core interaction rides ISLs to the
  remote ground core.
* **SkyCore** [42]: the UAV core moved to satellites -- all functions
  and *all subscribers' pre-computed security contexts* on board, with
  proactive state synchronisation broadcast between satellites.
* **Baoyun** [22-24]: the first real 5G LEO core -- AMF + SMF + UPF on
  the satellite (Fig. 6c), authentication/subscription/policy still at
  the terrestrial home.
* **DPCM** [44]: device-side state replicas accelerate the legacy
  procedures, but service areas stay logical, so satellite mobility
  still triggers the full registration machinery plus replica
  refreshes.
* **SpaceCore**: this paper (Fig. 16 flows, geospatial mobility,
  stateless satellites).
"""

from __future__ import annotations

from typing import Dict, List

from ..fiveg.messages import (
    HANDOVER_FLOW,
    INITIAL_REGISTRATION_FLOW,
    LEGACY_FLOWS,
    MOBILITY_REGISTRATION_FLOW,
    MessageTemplate,
    ProcedureKind,
    Role,
    SESSION_ESTABLISHMENT_FLOW,
    SPACECORE_FLOWS,
)
from .base import Solution, StateResidency

_RADIO_ONLY = frozenset({Role.RAN, Role.RAN2})
_DATA_SESSION = _RADIO_ONLY | frozenset({Role.UPF})
_WITH_MOBILITY = _DATA_SESSION | frozenset({Role.AMF, Role.SMF})
_ALL_FUNCTIONS = _WITH_MOBILITY | frozenset(
    {Role.AUSF, Role.UDM, Role.PCF, Role.ANCHOR_UPF})

#: Measured cost of SpaceCore's per-procedure local crypto (state
#: decryption + key agreement, Fig. 18a), seconds.
SPACECORE_CRYPTO_OVERHEAD_S = 0.004


def fiveg_ntn() -> Solution:
    """Option 1: satellites as radio access only."""
    return Solution(
        name="5G NTN",
        on_board=_RADIO_ONLY,
        flows=dict(LEGACY_FLOWS),
        mobility_registration_per_pass=False,
        handover_per_pass=True,
        state_residency=StateResidency.RELAY_ONLY,
        # The IP anchors at the remote home gateway, so it survives
        # satellite mobility -- at the price of slow, remote signaling.
        ip_stable_under_satellite_mobility=True,
    )


def skycore() -> Solution:
    """All functions + pre-provisioned state on board, with sync.

    SkyCore avoids ground round trips entirely but pays (a) heavy
    on-board functions and (b) a proactive state-synchronisation
    broadcast so neighbouring satellites stay consistent.
    """
    return Solution(
        name="SkyCore",
        on_board=_ALL_FUNCTIONS,
        flows=dict(LEGACY_FLOWS),
        mobility_registration_per_pass=True,
        state_residency=StateResidency.ALL_SUBSCRIBERS,
        sync_fanout=12,
        processing_efficiency=0.15,
    )


def _baoyun_flows() -> Dict[ProcedureKind, List[MessageTemplate]]:
    """Baoyun's on-board SMF caches subscription data after the first
    contact, so per-session UDM round trips disappear; policy (PCF)
    stays at the home and is consulted per session."""
    session = [m for m in SESSION_ESTABLISHMENT_FLOW
               if Role.UDM not in (m.src, m.dst)]
    return {
        ProcedureKind.INITIAL_REGISTRATION: INITIAL_REGISTRATION_FLOW,
        ProcedureKind.SESSION_ESTABLISHMENT: session,
        ProcedureKind.HANDOVER: HANDOVER_FLOW,
        ProcedureKind.MOBILITY_REGISTRATION: MOBILITY_REGISTRATION_FLOW,
    }


def baoyun() -> Solution:
    """Option 3: AMF/SMF/UPF on board, home keeps AUSF/UDM/PCF."""
    return Solution(
        name="Baoyun",
        on_board=_WITH_MOBILITY,
        flows=_baoyun_flows(),
        mobility_registration_per_pass=True,
        state_residency=StateResidency.ACTIVE_CONTEXTS,
    )


def _dpcm_flows() -> Dict[ProcedureKind, List[MessageTemplate]]:
    """DPCM localizes session establishment with the device replica
    (its headline latency win) but keeps registration/mobility flows
    legacy; the device replica is kept coherent with the home by the
    extra refresh messages accounted via ``replica_update_messages``."""
    from ..fiveg.messages import MessageTemplate as _MT
    from ..fiveg.state import StateCategory as _SC
    all_states = tuple(_SC)
    shortened_session = [
        SESSION_ESTABLISHMENT_FLOW[0],
        SESSION_ESTABLISHMENT_FLOW[1],
        _MT("P1'", "rrc-setup-complete-with-device-state", Role.UE,
            Role.RAN, 900, all_states),
        _MT("P7", "session-context-create", Role.RAN, Role.AMF, 260,
            (_SC.IDENTIFIERS,)),
        _MT("P7", "session-context-install", Role.AMF, Role.SMF, 260,
            (_SC.IDENTIFIERS, _SC.QOS)),
        _MT("P8", "forwarding-rule-establishment", Role.SMF, Role.UPF,
            300, (_SC.LOCATION, _SC.QOS, _SC.BILLING)),
        _MT("P9", "session-accept", Role.AMF, Role.UE, 280,
            (_SC.IDENTIFIERS, _SC.LOCATION, _SC.QOS)),
    ]
    return {
        ProcedureKind.INITIAL_REGISTRATION: INITIAL_REGISTRATION_FLOW,
        ProcedureKind.SESSION_ESTABLISHMENT: shortened_session,
        ProcedureKind.HANDOVER: HANDOVER_FLOW,
        ProcedureKind.MOBILITY_REGISTRATION: MOBILITY_REGISTRATION_FLOW,
    }


def dpcm() -> Solution:
    """Device-assisted control plane on the Option 3 placement."""
    return Solution(
        name="DPCM",
        on_board=_WITH_MOBILITY,
        flows=_dpcm_flows(),
        mobility_registration_per_pass=True,
        state_residency=StateResidency.ACTIVE_CONTEXTS,
        replica_update_messages=2,
    )


def spacecore() -> Solution:
    """This paper: stateless satellites + geospatial everything."""
    return Solution(
        name="SpaceCore",
        on_board=_DATA_SESSION,
        flows=dict(SPACECORE_FLOWS),
        mobility_registration_per_pass=False,
        state_residency=StateResidency.NONE,
        ip_stable_under_satellite_mobility=True,
        crypto_overhead_s=SPACECORE_CRYPTO_OVERHEAD_S,
        # Idle UEs reselect silently (S4.3); only active sessions
        # perform the local piggybacked handover.
        handover_all_users=False,
    )


#: Evaluation order used by Fig. 17/19/20 and Table 4.
ALL_SOLUTIONS = (spacecore, fiveg_ntn, skycore, dpcm, baoyun)


def solution_by_name(name: str) -> Solution:
    """Look up one of the five solutions case-insensitively."""
    for factory in ALL_SOLUTIONS:
        candidate = factory()
        if candidate.name.lower() == name.lower():
            return candidate
    raise KeyError(f"unknown solution {name!r}")
