"""Failure models: satellite decay and intermittent radio links (Fig. 13).

Two empirically grounded processes:

* **satellite decay** -- about 1 in 40 Starlink satellites has failed
  [34, 35]; Fig. 13a shows the monthly additions and the cumulative
  curve.  We model failures as a per-satellite monthly hazard and
  reproduce the accumulation shape.
* **radio-link error bursts** -- Fig. 13b shows Tiantong frame error
  rates spiking intermittently (atmospheric attenuation).  We model a
  two-state Gilbert-Elliott channel: a low-error "good" state with
  occasional "bad" bursts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..constants import STARLINK_FAILURE_FRACTION


@dataclass(frozen=True)
class DecaySample:
    """One month of the Fig. 13a series."""

    month: int
    additions: int
    accumulated: int


def satellite_decay_series(fleet_size: int, months: int,
                           monthly_hazard: Optional[float] = None,
                           seed: int = 0) -> List[DecaySample]:
    """Monthly failure additions and the cumulative count (Fig. 13a).

    The default hazard is calibrated so roughly 1/40 of the fleet has
    failed after two years -- the paper's Starlink statistic.
    """
    if fleet_size < 0:
        raise ValueError("fleet_size must be non-negative")
    if months < 0:
        raise ValueError("months must be non-negative")
    if monthly_hazard is None:
        monthly_hazard = STARLINK_FAILURE_FRACTION / 24.0
    if not 0.0 <= monthly_hazard <= 1.0:
        raise ValueError("monthly_hazard must be in [0, 1]")
    rng = random.Random(seed)
    alive = fleet_size
    accumulated = 0
    series: List[DecaySample] = []
    for month in range(1, months + 1):
        additions = sum(1 for _ in range(alive)
                        if rng.random() < monthly_hazard)
        alive -= additions
        accumulated += additions
        series.append(DecaySample(month, additions, accumulated))
    return series


class GilbertElliottChannel:
    """Two-state bursty frame-error channel (Fig. 13b).

    ``good`` state: near-zero frame error rate; ``bad`` state: heavy
    loss.  Transitions are memoryless per sample step, producing the
    intermittent spikes of the Tiantong measurement.
    """

    def __init__(self, p_good_to_bad: float = 0.01,
                 p_bad_to_good: float = 0.2,
                 fer_good: float = 0.001, fer_bad: float = 0.35,
                 seed: int = 0):
        for p in (p_good_to_bad, p_bad_to_good, fer_good, fer_bad):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.fer_good = fer_good
        self.fer_bad = fer_bad
        self._rng = random.Random(seed)
        self.in_bad_state = False

    def step(self) -> float:
        """Advance one sampling interval; returns the current FER."""
        if self.in_bad_state:
            if self._rng.random() < self.p_bad_to_good:
                self.in_bad_state = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self.in_bad_state = True
        return self.fer_bad if self.in_bad_state else self.fer_good

    def frame_lost(self) -> bool:
        """Sample one frame at the current state."""
        fer = self.fer_bad if self.in_bad_state else self.fer_good
        return self._rng.random() < fer

    def series(self, steps: int) -> List[float]:
        """A FER time series (the Fig. 13b trace)."""
        return [self.step() for _ in range(steps)]

    @property
    def steady_state_bad_fraction(self) -> float:
        denom = self.p_good_to_bad + self.p_bad_to_good
        return self.p_good_to_bad / denom if denom else 0.0


def procedure_success_probability(message_count: int,
                                  per_message_loss: float,
                                  retries: int = 0) -> float:
    """Probability a stateful procedure completes despite link loss.

    S3.3: "any signaling loss/error can block the entire procedure" --
    success requires *every* message (with its retries) to get
    through.  Long flows are exponentially fragile, which is exactly
    why SpaceCore's 4-message local exchange wins under failures.
    """
    if not 0.0 <= per_message_loss <= 1.0:
        raise ValueError("loss must be a probability")
    if message_count < 0 or retries < 0:
        raise ValueError("counts must be non-negative")
    p_message = 1.0 - per_message_loss ** (retries + 1)
    return p_message ** message_count
