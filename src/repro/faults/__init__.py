"""Failure and attack models (S3.3, Fig. 13, Fig. 19) + chaos engine."""

from .chaos import (
    ChaosController,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    LinkChannelModel,
)
from .attacks import (
    HijackScenario,
    JammingAttack,
    hijack_initial_leak,
    hijack_leak_rate,
    hijack_leak_series,
    mitm_comparison,
    mitm_leak_rate,
)
from .failures import (
    DecaySample,
    GilbertElliottChannel,
    procedure_success_probability,
    satellite_decay_series,
)

__all__ = [
    "ChaosController", "FaultEvent", "FaultKind", "FaultSchedule",
    "LinkChannelModel",
    "HijackScenario", "JammingAttack", "hijack_initial_leak",
    "hijack_leak_rate",
    "hijack_leak_series", "mitm_comparison", "mitm_leak_rate",
    "DecaySample", "GilbertElliottChannel",
    "procedure_success_probability", "satellite_decay_series",
]
