"""Attack models and leakage accounting (S3.3, Fig. 19, Appendix B).

Two attacks from the paper's threat model:

* **satellite hijacking** -- the adversary takes full control of one
  satellite and extracts everything stored on it, then keeps observing
  whatever new state the satellite is handed as it sweeps the globe
  (until the home revokes it);
* **man-in-the-middle** -- passive listening on wireless ISLs; without
  IPsec (not mandatory in the standards [51]) every security state
  migrated in the clear leaks.

Leakage is counted in *sensitive states* (S5 items: keys and
authentication vectors), the unit of Fig. 19's axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..baselines.base import ACTIVE_FRACTION, Solution, StateResidency
from ..fiveg.messages import ProcedureKind


@dataclass(frozen=True)
class HijackScenario:
    """Parameters of a hijacking experiment (Fig. 19a)."""

    capacity: int                  # users served per satellite
    total_subscribers: int         # constellation-wide subscriber base
    dwell_s: float                 # coverage transient per pass
    revocation_delay_s: float = 600.0  # home detects + revokes (S4.4)


def hijack_initial_leak(solution: Solution,
                        scenario: HijackScenario) -> int:
    """States extracted the instant the satellite is compromised."""
    residency = solution.state_residency
    if residency is StateResidency.ALL_SUBSCRIBERS:
        # SkyCore/Option 4: pre-provisioned vectors for everyone.
        return scenario.total_subscribers
    if residency is StateResidency.ACTIVE_CONTEXTS:
        # Baoyun/DPCM: the registered contexts of the footprint.
        return scenario.capacity
    if residency is StateResidency.RELAY_ONLY:
        # 5G NTN: only the radio-layer contexts of connected users.
        return int(scenario.capacity * ACTIVE_FRACTION)
    # SpaceCore: only the currently served sessions' ephemeral keys.
    return int(scenario.capacity * ACTIVE_FRACTION)


def hijack_leak_rate(solution: Solution,
                     scenario: HijackScenario) -> float:
    """New states/s the hijacked satellite keeps observing.

    Stateful designs hand the satellite fresh contexts as new users
    enter its footprint (capacity/dwell users per second).  SpaceCore
    hands it ABE blobs it can open only until revocation.
    """
    newcomer_rate = scenario.capacity / scenario.dwell_s
    residency = solution.state_residency
    if residency is StateResidency.ALL_SUBSCRIBERS:
        # Already has everyone; new observations add nothing.
        return 0.0
    if residency is StateResidency.ACTIVE_CONTEXTS:
        return newcomer_rate
    if residency is StateResidency.RELAY_ONLY:
        return newcomer_rate * ACTIVE_FRACTION
    # SpaceCore: new piggybacked replicas are decryptable until the
    # home rotates the epoch; only active users hand over replicas.
    return newcomer_rate * ACTIVE_FRACTION


def hijack_leak_series(solution: Solution, scenario: HijackScenario,
                       duration_s: float,
                       step_s: float = 60.0) -> List[Tuple[float, float]]:
    """Cumulative leaked states over time (the Fig. 19a curves)."""
    initial = float(hijack_initial_leak(solution, scenario))
    rate = hijack_leak_rate(solution, scenario)
    revocable = solution.state_residency is StateResidency.NONE
    series: List[Tuple[float, float]] = []
    t = 0.0
    while t <= duration_s:
        if revocable:
            exposure = min(t, scenario.revocation_delay_s)
        else:
            exposure = t
        series.append((t, initial + rate * exposure))
        t += step_s
    return series


# ---------------------------------------------------------------------------
# Man-in-the-middle on wireless links (Fig. 19b)
# ---------------------------------------------------------------------------

def _is_encrypted_at_rest(message_name: str) -> bool:
    """SpaceCore's replicas travel ABE-encrypted; everything the
    legacy flows annotate as carrying S5 travels in the clear when
    IPsec is off."""
    return "replica" in message_name


def mitm_leak_rate(solution: Solution, capacity: int, dwell_s: float,
                   ipsec_enabled: bool = False) -> float:
    """Security states/s leaked to a passive wireless listener.

    Counts S5-carrying messages per second on any wireless segment
    (radio, ISL, or ground-space link), excluding end-to-end-encrypted
    payloads (ABE replicas), plus SkyCore-style sync broadcasts which
    replicate security contexts between satellites.
    """
    if ipsec_enabled:
        # IPsec protects the infrastructure links; only the initial
        # over-the-air AKA exchange remains, which carries no usable
        # key material in the clear.
        return 0.0
    rates = solution.procedure_rates_per_user(dwell_s)
    per_user = 0.0
    for kind, rate in rates.items():
        flow = solution.flow(kind)
        exposed = sum(1 for m in flow
                      if m.carries_security
                      and not _is_encrypted_at_rest(m.name))
        per_user += rate * exposed
    # Proactive sync replicates the security context to sync_fanout
    # neighbours on every state change (session + mobility events).
    if solution.sync_fanout:
        change_rate = (rates[ProcedureKind.SESSION_ESTABLISHMENT]
                       + rates[ProcedureKind.MOBILITY_REGISTRATION])
        per_user += change_rate * solution.sync_fanout
    return per_user * capacity


def mitm_comparison(solutions, capacity: int,
                    dwell_s: float) -> Dict[str, float]:
    """The Fig. 19b bar chart: per-solution MITM leak rates."""
    return {s.name: mitm_leak_rate(s, capacity, dwell_s)
            for s in solutions}


# ---------------------------------------------------------------------------
# Jamming (S3.3: "Jamming satellite links can also block the stateful
# procedures in Figure 9 and disrupt services.")
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JammingAttack:
    """A regional jammer disabling links near a terrestrial location.

    ``radius_km`` is the footprint of the jammer's effect: any ISL
    endpoint or ground-space link whose satellite currently flies over
    the region is disrupted.
    """

    lat: float
    lon: float
    radius_km: float = 1500.0
    #: Links this jammer has taken down and not yet restored.  Mutable
    #: bookkeeping (the frozen dataclass only freezes rebinding), so
    #: ``apply``/``lift`` are idempotent and ``lift`` restores exactly
    #: the marks this attack placed -- never failures injected by
    #: other fault sources.
    _downed: Set[FrozenSet[int]] = field(default_factory=set, init=False,
                                         repr=False, compare=False,
                                         hash=False)

    def affected_satellites(self, topology, t: float) -> List[int]:
        """Satellites whose links the jammer can currently disturb."""
        import numpy as np

        from ..orbits.snapshot import snapshot_for
        threshold = self.radius_km / 6371.0
        ang = snapshot_for(topology.propagator, t).central_angles(
            self.lat, self.lon)
        return [int(sat) for sat in np.nonzero(ang <= threshold)[0]]

    def _grid_links(self, topology, sat: int) -> List[FrozenSet[int]]:
        plane, slot = topology.constellation.plane_slot(sat)
        up, down = topology.constellation.intra_plane_neighbors(
            plane, slot)
        left, right = topology.constellation.inter_plane_neighbors(
            plane, slot)
        return [frozenset((sat, neighbor))
                for neighbor in (up, down, left, right)]

    def apply(self, topology, t: float) -> int:
        """Take down every ISL touching an affected satellite.

        Returns the number of satellites disrupted.  The satellites
        themselves stay alive (jamming is a link-layer attack), so
        recovery is instant once the jammer stops.  Idempotent:
        re-applying only downs links not already down, and links that
        were failed by another source are left to that source.
        """
        affected = self.affected_satellites(topology, t)
        for sat in affected:
            for link in self._grid_links(topology, sat):
                a, b = tuple(link)
                if link in self._downed or topology.isl_marked_failed(a, b):
                    continue
                topology.fail_isl(a, b)
                self._downed.add(link)
        return len(affected)

    def lift(self, topology, t: float) -> None:
        """Stop jamming: restore exactly the links this attack downed.

        Idempotent, and safe to call at a different time than
        ``apply`` -- the restoration set is the recorded one, not a
        re-computation from the (moved) geometry.
        """
        for link in self._downed:
            a, b = tuple(link)
            topology.recover_isl(a, b)
        self._downed.clear()
