"""Event-driven chaos engine: scheduled fault injection (S3.3, Fig. 13).

The offline fault models of :mod:`repro.faults.failures` describe
*distributions* -- how often satellites decay, how radio links burst.
This module turns them into **scheduled events** on the discrete-event
:class:`~repro.sim.engine.Simulator`, so failures fire *during*
simulated procedures and every layer above (routing, packet delivery,
the SpaceCore control plane) must survive them live:

* :class:`FaultSchedule` converts the satellite-decay hazard, Gilbert-
  Elliott link bursts, and :class:`~repro.faults.attacks.JammingAttack`
  windows into a deterministic, seed-reproducible event list;
* :class:`ChaosController` registers the schedule on a simulator,
  applies each event to a :class:`~repro.topology.grid.GridTopology`
  (bumping its ``fault_epoch``), keeps an append-only fault log, and
  notifies subscribers (e.g. the SpaceCore recovery machinery);
* :class:`LinkChannelModel` gives the packet layer an independent
  Gilbert-Elliott channel per ISL with deterministic per-link seeds.

Everything is seeded: the same (schedule parameters, seed) pair yields
a bit-identical fault log on every run -- the property the chaos
acceptance tests pin down.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..constants import STARLINK_FAILURE_FRACTION
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from ..sim.engine import Simulator
from .attacks import JammingAttack
from .failures import GilbertElliottChannel

#: Seconds per month used to convert the Fig. 13a monthly hazard into
#: a continuous failure rate.
MONTH_S = 30.0 * 86400.0


class FaultKind(Enum):
    """What a scheduled fault event does to the topology."""

    SAT_FAIL = "sat-fail"
    SAT_RECOVER = "sat-recover"
    ISL_FAIL = "isl-fail"
    ISL_RECOVER = "isl-recover"
    JAM_START = "jam-start"
    JAM_STOP = "jam-stop"
    GS_FAIL = "gs-fail"
    GS_RECOVER = "gs-recover"
    COMPUTE_DEGRADE = "compute-degrade"
    COMPUTE_RESTORE = "compute-restore"


#: Kinds whose identity includes the capacity ``factor``.
_COMPUTE_KINDS = frozenset({FaultKind.COMPUTE_DEGRADE,
                            FaultKind.COMPUTE_RESTORE})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: apply ``kind`` to ``target`` at ``time``.

    ``target`` is ``(sat,)`` for satellite and compute events,
    ``(sat_a, sat_b)`` for link events, ``(station_index,)`` for
    ground-station events, and ``()`` for jamming (the attack object
    rides in ``attack``; the log key carries its geometry instead).
    ``factor`` is the remaining compute-capacity fraction of a
    ``COMPUTE_DEGRADE`` event (1.0 for every other kind).
    """

    time: float
    kind: FaultKind
    target: Tuple[int, ...] = ()
    attack: Optional[JammingAttack] = field(default=None, compare=False)
    factor: float = 1.0

    def key(self) -> Tuple:
        """A hashable, serialisable identity used for log comparison."""
        if self.attack is not None:
            geometry = (round(self.attack.lat, 9),
                        round(self.attack.lon, 9), self.attack.radius_km)
            return (self.time, self.kind.value, geometry)
        if self.kind in _COMPUTE_KINDS:
            return (self.time, self.kind.value, self.target,
                    round(self.factor, 9))
        return (self.time, self.kind.value, self.target)


def _link_seed(seed: int, sat_a: int, sat_b: int) -> int:
    """A stable per-link RNG seed (independent of hash randomisation)."""
    lo, hi = (sat_a, sat_b) if sat_a <= sat_b else (sat_b, sat_a)
    return (seed * 2_654_435_761 + lo * 1_000_003 + hi * 8_191) & 0x7FFFFFFF


class FaultSchedule:
    """A deterministic, seed-reproducible list of fault events.

    Builder methods translate each offline fault model into timed
    events; :meth:`events` returns them in firing order.  Building the
    same schedule twice with the same seeds yields identical events.
    """

    def __init__(self):
        self._events: List[FaultEvent] = []

    # -- direct entry -----------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Append one hand-placed event (chainable)."""
        if event.time < 0:
            raise ValueError("fault events cannot fire at negative time")
        self._events.append(event)
        return self

    # -- satellite decay (Fig. 13a made live) -----------------------------------

    def add_satellite_decay(self, satellites: Sequence[int],
                            horizon_s: float,
                            monthly_hazard: Optional[float] = None,
                            acceleration: float = 1.0,
                            repair_delay_s: Optional[float] = None,
                            seed: int = 0) -> "FaultSchedule":
        """Exponential per-satellite failure times from the decay hazard.

        ``acceleration`` compresses wall-clock so chaos runs over
        simulation-scale horizons still see failures (standard chaos-
        engineering practice); ``repair_delay_s`` schedules a matching
        recovery (None = the satellite stays dead).
        """
        if horizon_s < 0:
            raise ValueError("horizon must be non-negative")
        if acceleration <= 0:
            raise ValueError("acceleration must be positive")
        if monthly_hazard is None:
            monthly_hazard = STARLINK_FAILURE_FRACTION / 24.0
        if not 0.0 <= monthly_hazard <= 1.0:
            raise ValueError("monthly_hazard must be in [0, 1]")
        if monthly_hazard == 0.0:
            return self
        # Continuous-time rate whose one-month failure probability
        # matches the monthly hazard: p = 1 - exp(-rate * MONTH_S).
        rate = -math.log(1.0 - monthly_hazard) / MONTH_S * acceleration
        rng = random.Random(seed)
        for sat in satellites:
            t_fail = rng.expovariate(rate)
            if t_fail > horizon_s:
                continue
            self._events.append(FaultEvent(t_fail, FaultKind.SAT_FAIL,
                                           (int(sat),)))
            if repair_delay_s is not None:
                t_up = t_fail + repair_delay_s
                if t_up <= horizon_s:
                    self._events.append(FaultEvent(
                        t_up, FaultKind.SAT_RECOVER, (int(sat),)))
        return self

    # -- Gilbert-Elliott ISL bursts (Fig. 13b made live) ------------------------

    def add_link_bursts(self, links: Iterable[Tuple[int, int]],
                        horizon_s: float, step_s: float = 10.0,
                        p_good_to_bad: float = 0.01,
                        p_bad_to_good: float = 0.2,
                        seed: int = 0) -> "FaultSchedule":
        """Turn bad-state windows of a per-link GE chain into ISL outages.

        Each link gets an independent chain seeded from (seed, link),
        sampled every ``step_s``; entering the bad state downs the ISL,
        leaving it restores it (with a closing recovery at the horizon
        so no outage leaks past the run).
        """
        if horizon_s < 0:
            raise ValueError("horizon must be non-negative")
        if step_s <= 0:
            raise ValueError("step must be positive")
        for sat_a, sat_b in links:
            channel = GilbertElliottChannel(
                p_good_to_bad=p_good_to_bad, p_bad_to_good=p_bad_to_good,
                seed=_link_seed(seed, sat_a, sat_b))
            target = (int(sat_a), int(sat_b))
            in_bad = False
            steps = int(horizon_s / step_s)
            for i in range(1, steps + 1):
                channel.step()
                if channel.in_bad_state == in_bad:
                    continue
                in_bad = channel.in_bad_state
                kind = (FaultKind.ISL_FAIL if in_bad
                        else FaultKind.ISL_RECOVER)
                self._events.append(FaultEvent(i * step_s, kind, target))
            if in_bad:
                self._events.append(FaultEvent(
                    steps * step_s, FaultKind.ISL_RECOVER, target))
        return self

    # -- jamming windows (S3.3) -------------------------------------------------

    def add_jamming_window(self, attack: JammingAttack, start_s: float,
                           stop_s: float) -> "FaultSchedule":
        """One regional-jammer on/off window."""
        if start_s < 0 or stop_s < start_s:
            raise ValueError("jamming window must satisfy 0 <= start <= stop")
        self._events.append(FaultEvent(start_s, FaultKind.JAM_START,
                                       attack=attack))
        self._events.append(FaultEvent(stop_s, FaultKind.JAM_STOP,
                                       attack=attack))
        return self

    # -- handover storms (terminator-crossing churn) ----------------------------

    def add_handover_storm(self, satellites: Sequence[int],
                           start_s: float, stop_s: float,
                           repair_delay_s: float = 120.0
                           ) -> "FaultSchedule":
        """A staggered wave of short serving-satellite blackouts.

        Models the mass re-attach churn of a terminator crossing: every
        listed satellite drops once inside the window (evenly staggered
        in list order) and comes back ``repair_delay_s`` later, forcing
        its whole attached population through the recovery path nearly
        at once.
        """
        if start_s < 0 or stop_s <= start_s:
            raise ValueError("storm window must satisfy 0 <= start < stop")
        if repair_delay_s <= 0:
            raise ValueError("repair delay must be positive")
        sats = [int(sat) for sat in satellites]
        if not sats:
            return self
        spacing = (stop_s - start_s) / len(sats)
        for index, sat in enumerate(sats):
            t_fail = start_s + index * spacing
            self._events.append(FaultEvent(t_fail, FaultKind.SAT_FAIL,
                                           (sat,)))
            self._events.append(FaultEvent(t_fail + repair_delay_s,
                                           FaultKind.SAT_RECOVER, (sat,)))
        return self

    # -- regional ground-station outages ----------------------------------------

    def add_ground_station_outage(self, stations: Sequence[int],
                                  start_s: float, stop_s: float
                                  ) -> "FaultSchedule":
        """Down the listed ground stations (by index) for one window."""
        if start_s < 0 or stop_s <= start_s:
            raise ValueError("outage window must satisfy 0 <= start < stop")
        for station in stations:
            self._events.append(FaultEvent(start_s, FaultKind.GS_FAIL,
                                           (int(station),)))
            self._events.append(FaultEvent(stop_s, FaultKind.GS_RECOVER,
                                           (int(station),)))
        return self

    # -- onboard-compute degradation ("From Earth to Space") ---------------------

    def add_compute_degradation(self, satellites: Sequence[int],
                                start_s: float, stop_s: float,
                                factor: float) -> "FaultSchedule":
        """Throttle the listed satellites' compute for one window.

        ``factor`` is the remaining capacity fraction (0 < factor < 1):
        radiation upsets, thermal throttling, or a failed board leave
        the platform running at ``factor`` of its rated throughput, so
        procedure service times stretch by ``1 / factor`` and the
        signaling processor saturates at proportionally lower load.
        """
        if start_s < 0 or stop_s <= start_s:
            raise ValueError(
                "degradation window must satisfy 0 <= start < stop")
        if not 0.0 < factor < 1.0:
            raise ValueError("capacity factor must be in (0, 1)")
        for sat in satellites:
            self._events.append(FaultEvent(
                start_s, FaultKind.COMPUTE_DEGRADE, (int(sat),),
                factor=factor))
            self._events.append(FaultEvent(
                stop_s, FaultKind.COMPUTE_RESTORE, (int(sat),)))
        return self

    # -- reading ----------------------------------------------------------------

    def events(self) -> List[FaultEvent]:
        """All events in deterministic firing order."""
        return sorted(self._events,
                      key=lambda e: (e.time, e.kind.value, e.target))

    def __len__(self) -> int:
        return len(self._events)


class ChaosController:
    """Arms a :class:`FaultSchedule` on a simulator and applies it.

    Each fired event mutates the topology (which bumps its
    ``fault_epoch``, invalidating liveness caches such as the
    DijkstraRouter graph LRU), lands in the append-only :attr:`log`,
    and is fanned out to every subscriber -- the hook the procedure-
    level recovery machinery uses to learn of satellite deaths the
    instant they happen.
    """

    def __init__(self, sim: Simulator, topology,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.topology = topology
        #: Optional observability: per-kind fault counters and one
        #: ``fault.<kind>`` trace event (at ``sim.now``) per applied
        #: event, alongside the append-only :attr:`log`.
        self.metrics = metrics
        self.tracer = tracer
        self.log: List[FaultEvent] = []
        self._subscribers: List[Callable[[FaultEvent], None]] = []
        self.events_armed = 0
        self._armed_keys: set = set()
        #: Live compute-capacity fractions per degraded satellite
        #: (absent = full capacity).
        self.compute_factors: Dict[int, float] = {}

    def subscribe(self, callback: Callable[[FaultEvent], None]) -> None:
        """Register a callback invoked after each event is applied."""
        self._subscribers.append(callback)

    def arm(self, schedule: FaultSchedule) -> int:
        """Register every *new* schedule event on the simulator.

        Returns the number of events newly armed.  Multiple schedules
        can be armed on one controller; firing order stays
        deterministic because the engine breaks time ties by scheduling
        order and ``FaultSchedule.events()`` orders ties by
        ``(time, kind, target)``.  Arming is idempotent by event key:
        overlapping or duplicate schedules (the same event armed twice,
        two schedules sharing a window) apply each distinct fault
        exactly once.
        """
        armed = 0
        for event in schedule.events():
            key = event.key()
            if key in self._armed_keys:
                continue
            self._armed_keys.add(key)
            self.sim.schedule_at(event.time, self._fire, event)
            armed += 1
        self.events_armed += armed
        return armed

    # -- event application --------------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind is FaultKind.SAT_FAIL:
            self.topology.fail_satellite(event.target[0])
        elif kind is FaultKind.SAT_RECOVER:
            self.topology.recover_satellite(event.target[0])
        elif kind is FaultKind.ISL_FAIL:
            self.topology.fail_isl(*event.target)
        elif kind is FaultKind.ISL_RECOVER:
            self.topology.recover_isl(*event.target)
        elif kind is FaultKind.JAM_START:
            event.attack.apply(self.topology, self.sim.now)
        elif kind is FaultKind.JAM_STOP:
            event.attack.lift(self.topology, self.sim.now)
        elif kind is FaultKind.GS_FAIL:
            self.topology.fail_ground_station(event.target[0])
        elif kind is FaultKind.GS_RECOVER:
            self.topology.recover_ground_station(event.target[0])
        elif kind is FaultKind.COMPUTE_DEGRADE:
            self.compute_factors[event.target[0]] = event.factor
        elif kind is FaultKind.COMPUTE_RESTORE:
            self.compute_factors.pop(event.target[0], None)
        self.log.append(event)
        if self.metrics is not None:
            self.metrics.counter("chaos.faults", kind=kind.value).inc()
        if self.tracer is not None:
            self.tracer.event(f"fault.{kind.value}",
                              target=list(event.target))
        for subscriber in self._subscribers:
            subscriber(event)

    # -- reading --------------------------------------------------------------------

    def log_keys(self) -> List[Tuple]:
        """Serialisable identities of every applied event, in order.

        Two runs of the same seeded scenario must produce identical
        lists -- the bit-reproducibility contract.
        """
        return [event.key() for event in self.log]

    def jamming_active(self) -> bool:
        """Whether any armed jamming window is currently open."""
        open_jams = 0
        for event in self.log:
            if event.kind is FaultKind.JAM_START:
                open_jams += 1
            elif event.kind is FaultKind.JAM_STOP:
                open_jams -= 1
        return open_jams > 0

    def min_compute_factor(self) -> float:
        """The worst live compute derating (1.0 = nothing degraded)."""
        if not self.compute_factors:
            return 1.0
        return min(self.compute_factors.values())

    def compute_factor_at(self, t: float) -> float:
        """The worst compute derating active at sim-time ``t``.

        Replays the applied-event log, so it is usable after the run
        has finished (the live :attr:`compute_factors` map only shows
        the final state).
        """
        active: Dict[int, float] = {}
        for event in self.log:
            if event.time > t:
                break
            if event.kind is FaultKind.COMPUTE_DEGRADE:
                active[event.target[0]] = event.factor
            elif event.kind is FaultKind.COMPUTE_RESTORE:
                active.pop(event.target[0], None)
        if not active:
            return 1.0
        return min(active.values())


class LinkChannelModel:
    """Per-ISL Gilbert-Elliott channels for the packet layer.

    Channels are created lazily with deterministic per-link seeds, so
    loss patterns are reproducible regardless of which links a workload
    happens to exercise first.  Every :meth:`frame_lost` call advances
    that link's burst process by one sample step.
    """

    def __init__(self, seed: int = 0, p_good_to_bad: float = 0.01,
                 p_bad_to_good: float = 0.2, fer_good: float = 0.001,
                 fer_bad: float = 0.35):
        self.seed = seed
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.fer_good = fer_good
        self.fer_bad = fer_bad
        self._channels: Dict[FrozenSet[int], GilbertElliottChannel] = {}

    def channel(self, sat_a: int, sat_b: int) -> GilbertElliottChannel:
        """The (lazily created) burst channel of one undirected link."""
        key = frozenset((sat_a, sat_b))
        chan = self._channels.get(key)
        if chan is None:
            chan = GilbertElliottChannel(
                p_good_to_bad=self.p_good_to_bad,
                p_bad_to_good=self.p_bad_to_good,
                fer_good=self.fer_good, fer_bad=self.fer_bad,
                seed=_link_seed(self.seed, sat_a, sat_b))
            self._channels[key] = chan
        return chan

    def frame_lost(self, sat_a: int, sat_b: int) -> bool:
        """Advance the link's burst process one step and sample a frame."""
        chan = self.channel(sat_a, sat_b)
        chan.step()
        return chan.frame_lost()

    def in_burst(self, sat_a: int, sat_b: int) -> bool:
        """Whether the link is currently inside a bad-state burst."""
        return self.channel(sat_a, sat_b).in_bad_state
