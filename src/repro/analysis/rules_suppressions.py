"""Suppression hygiene: every ``# repro: ignore`` must say why.

An inline suppression is a reviewed exception to a determinism
contract, and the justification *is* the review artifact: six months
later the ``-- why`` clause is the only record of whether the
exception still holds.  Two forms are accepted::

    x = time.time()  # repro: ignore[wallclock-time] -- operator log only
    y = foo()        # repro: ignore -- prototype, tracked in #123

and two are findings: a bracketed ignore with no ``--`` trailer, and a
bare ``# repro: ignore`` with neither rule list nor trailer (which
silences *every* rule on the line with no record of intent).

This rule sets ``suppressible = False``: a hygiene finding cannot be
silenced by the very mechanism it audits.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Iterable, Iterator, Tuple

from .core import Finding, ModuleInfo, ProjectContext, Rule
from .registry import register

#: A suppression *comment* (anchored: the comment must begin with the
#: marker, so prose mentions in ``#:`` doc comments don't count), with
#: optional rule list and trailer.
_SUPPRESSION_RE = re.compile(
    r"^#\s*repro:\s*ignore"
    r"(?:\[(?P<rules>[A-Za-z0-9_\-, ]+)\])?"
    r"(?P<trailer>.*)$")
#: A justification trailer: ``-- <at least a few words of why>``.
_WHY_RE = re.compile(r"^\s*--\s*\S+")


def _comments(module: ModuleInfo) -> Iterator[Tuple[int, str]]:
    """(line, text) of every comment token.  Tokenizing (rather than
    line-scanning) keeps docstring prose that merely *mentions* the
    suppression syntax from registering as a suppression."""
    try:
        tokens = tokenize.generate_tokens(
            io.StringIO(module.source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):
        return


@register
class BareSuppressionRule(Rule):
    """Flag suppressions that carry no ``-- why`` justification."""

    id = "bare-suppression"
    family = "hygiene"
    severity = "warning"
    suppressible = False
    description = ("every '# repro: ignore' must name the rules it "
                   "waives and justify itself with '-- <why>'; an "
                   "unexplained suppression is an unreviewed "
                   "exception to a determinism contract")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield suppression comments missing rules or justification."""
        for lineno, comment in _comments(module):
            match = _SUPPRESSION_RE.match(comment)
            if match is None:
                continue
            rules = match.group("rules")
            has_why = bool(_WHY_RE.match(match.group("trailer")))
            if rules is None and not has_why:
                yield Finding(
                    rule=self.id, path=module.relpath, line=lineno,
                    message=("bare '# repro: ignore' silences every "
                             "rule on this line with no record of "
                             "which or why; use "
                             "'# repro: ignore[rule] -- <why>'"))
            elif not has_why:
                named = ", ".join(
                    sorted(r.strip() for r in rules.split(",")
                           if r.strip()))
                yield Finding(
                    rule=self.id, path=module.relpath, line=lineno,
                    message=(f"suppression of [{named}] has no "
                             f"'-- <why>' justification; record the "
                             f"reason the contract is waived here"))
