"""Whole-program effect inference over the call graph.

Each function gets a *direct* effect set read straight off its body,
then a fixed point propagates callee effects to callers until nothing
changes.  The result is a transitive **effect summary** per function:
"somewhere below this call, the wall clock is read", "a set is
iterated without sorting", "a fault listener is registered".  The
interprocedural rules (:mod:`.rules_interprocedural`) are thin
predicates over these summaries -- the PR 5 determinism bugs and the
PR 8 cache-staleness bug were all one-effect-summary questions the
file-local linter could not ask.

Inline suppressions participate: a direct effect whose source line
carries ``# repro: ignore[<base rule>]`` (e.g. the planner's justified
``perf_counter`` calibration reads) is *not* recorded, so a justified
exception deep in the runtime does not poison every caller above it.

Effects
-------

``reads-wallclock``
    A :data:`~repro.analysis.rules_determinism.WALLCLOCK_CALLS` call.
``draws-unseeded-rng``
    A module-level ``random``/``numpy.random`` draw or a bare seedable
    RNG constructor.
``iterates-unordered``
    A ``for``/comprehension/``list()``/``tuple()`` over a set-valued
    expression (or ``.keys()`` of a mutable module-global dict)
    without ``sorted(...)``.
``mutates-module-global``
    A write to a mutable module global (``global``, subscript store,
    mutator-method call).  Names matching the shard-local cache
    vocabulary (``cache``/``memo``/``table``) are exempt: keyed
    memoization of pure functions is the sanctioned pattern
    (``runtime.memo``), deterministic per shard by construction.
``registers-fault-listener``
    An ``add_fault_listener(...)`` call (the GridTopology invalidation
    registry).
``builds-topology-keyed-cache``
    A keyed store (``self._cache[key] = ...``) in a function that also
    reads GridTopology fault state (``fault_epoch``,
    ``failed_satellites()``, ...): the raw material of the stale-cache
    rule.
``emits-artifact``
    A JSON/golden/merge serialization sink: the places where
    iteration order becomes bytes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .callgraph import (
    SET_ANNOTATION_TAILS,
    CallGraph,
    FunctionNode,
    walk_function_body,
)
from .core import ModuleInfo, bound_names, call_name, tail_name
from .rules_determinism import (
    NUMPY_SAMPLERS,
    SEEDABLE_CONSTRUCTORS,
    STDLIB_SAMPLERS,
    WALLCLOCK_CALLS,
)

READS_WALLCLOCK = "reads-wallclock"
DRAWS_UNSEEDED_RNG = "draws-unseeded-rng"
ITERATES_UNORDERED = "iterates-unordered"
MUTATES_MODULE_GLOBAL = "mutates-module-global"
REGISTERS_FAULT_LISTENER = "registers-fault-listener"
BUILDS_TOPOLOGY_KEYED_CACHE = "builds-topology-keyed-cache"
EMITS_ARTIFACT = "emits-artifact"

ALL_EFFECTS = (
    READS_WALLCLOCK,
    DRAWS_UNSEEDED_RNG,
    ITERATES_UNORDERED,
    MUTATES_MODULE_GLOBAL,
    REGISTERS_FAULT_LISTENER,
    BUILDS_TOPOLOGY_KEYED_CACHE,
    EMITS_ARTIFACT,
)

#: Effects that break the sharded runtime's bit-identical contract
#: when present anywhere below a ``run_sharded`` worker.
SHARD_IMPURE_EFFECTS = frozenset({
    READS_WALLCLOCK, DRAWS_UNSEEDED_RNG, MUTATES_MODULE_GLOBAL,
})

#: Inline-suppression rule ids that also waive the matching effect at
#: its source line (a justified exception must not propagate).
EFFECT_SUPPRESSORS: Dict[str, Tuple[str, ...]] = {
    READS_WALLCLOCK: ("wallclock-time", "shard-purity"),
    DRAWS_UNSEEDED_RNG: ("unseeded-rng", "shard-purity"),
    MUTATES_MODULE_GLOBAL: ("shard-purity",),
    ITERATES_UNORDERED: ("unordered-iteration",),
    BUILDS_TOPOLOGY_KEYED_CACHE: ("stale-cache",),
}

#: Reading any of these derives a value from GridTopology fault state.
TOPOLOGY_STATE_ATTRS = frozenset({"fault_epoch"})
TOPOLOGY_STATE_CALLS = frozenset({
    "failed_satellites", "failed_isls", "failed_ground_stations",
    "has_topology_faults", "live_ground_stations",
})

#: Container-mutating method names (receiver is modified in place).
MUTATOR_METHODS = frozenset({
    "append", "add", "update", "pop", "popitem", "clear", "extend",
    "insert", "remove", "discard", "setdefault", "appendleft",
    "extendleft",
})

#: Module globals matching this are sanctioned shard-local caches.
_CACHE_NAME_RE = re.compile(r"cache|memo|table", re.IGNORECASE)

#: Serialization sinks where iteration order becomes artifact bytes.
ARTIFACT_SINK_CALLS = frozenset({"json.dump", "json.dumps"})
ARTIFACT_SINK_TAILS = frozenset({
    "merge_snapshots", "to_json", "write_golden", "write_trace_jsonl",
})

#: Set-algebra methods whose result is itself set-valued.
_SET_METHOD_TAILS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


@dataclass
class EffectOccurrence:
    """One direct-effect source: where an effect enters the program."""

    effect: str
    node_id: str
    path: str
    line: int
    detail: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form, used by the ``--graph`` export."""
        return {
            "effect": self.effect,
            "function": self.node_id,
            "path": self.path,
            "line": self.line,
            "detail": self.detail,
        }


def _suppressed(module: ModuleInfo, line: int, effect: str) -> bool:
    return any(module.is_suppressed(line, rule)
               for rule in EFFECT_SUPPRESSORS.get(effect, ()))


def reads_topology_state(func: ast.AST) -> bool:
    """Whether a function body derives a value from fault state."""
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) \
                and node.attr in TOPOLOGY_STATE_ATTRS:
            return True
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in TOPOLOGY_STATE_CALLS:
            return True
    return False


class _SetTracker:
    """Which expressions inside one function are set-valued."""

    def __init__(self, fnode: FunctionNode, graph: CallGraph):
        self.graph = graph
        self.module = fnode.module
        self.set_locals: Set[str] = set()
        func = fnode.func
        for arg in (func.args.posonlyargs + func.args.args
                    + func.args.kwonlyargs):
            if self._annotation_is_set(arg.annotation):
                self.set_locals.add(arg.arg)
        # One forward pass over simple assignments; good enough for
        # the straight-line key/merge code this targets.
        for node in walk_function_body(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                if self.is_set_valued(node.value):
                    self.set_locals.add(node.targets[0].id)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name) \
                    and self._annotation_is_set(node.annotation):
                self.set_locals.add(node.target.id)

    @staticmethod
    def _annotation_is_set(node: Optional[ast.expr]) -> bool:
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id in SET_ANNOTATION_TAILS
        if isinstance(node, ast.Attribute):
            return node.attr in SET_ANNOTATION_TAILS
        return False

    def is_set_valued(self, node: ast.expr) -> bool:
        """Whether an expression's value iterates in hash order."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_locals
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self.is_set_valued(node.left)
                    or self.is_set_valued(node.right))
        if isinstance(node, ast.Call):
            name = call_name(node, self.module)
            tail = tail_name(name)
            if tail in ("set", "frozenset"):
                return True
            if tail in _SET_METHOD_TAILS and isinstance(
                    node.func, ast.Attribute):
                return True
            # A project function annotated ``-> Set[...]``.
            targets = self.graph.call_targets.get(id(node), ())
            return any(self.graph.returns_set(t) for t in targets)
        return False


def _describe(node: ast.expr, module: ModuleInfo) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all exprs
        return "<expr>"
    return text if len(text) <= 48 else text[:45] + "..."


class EffectAnalysis:
    """Direct effects + their transitive closure over a call graph."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: node id -> direct effects
        self.direct: Dict[str, Set[str]] = {}
        #: node id -> every direct occurrence (for messages/export)
        self.occurrences: Dict[str, List[EffectOccurrence]] = {}
        #: node id -> transitive effect summary
        self.summary: Dict[str, FrozenSet[str]] = {}
        for fnode in graph.nodes.values():
            occs = list(self._direct_effects(fnode))
            self.occurrences[fnode.node_id] = occs
            self.direct[fnode.node_id] = {o.effect for o in occs}
        self._fixed_point()

    # -- direct extraction -------------------------------------------------

    def _direct_effects(self, fnode: FunctionNode
                        ) -> Iterable[EffectOccurrence]:
        module = fnode.module
        func = fnode.func
        tracker = _SetTracker(fnode, self.graph)
        local = bound_names(func)
        topology_keyed = reads_topology_state(func)
        mutable_globals = {
            name for name in module.mutable_globals
            if not _CACHE_NAME_RE.search(name)}

        def occ(effect: str, node: ast.AST, detail: str
                ) -> Optional[EffectOccurrence]:
            line = getattr(node, "lineno", func.lineno)
            if _suppressed(module, line, effect):
                return None
            return EffectOccurrence(
                effect=effect, node_id=fnode.node_id,
                path=module.relpath, line=line, detail=detail)

        def global_dict_keys(call: ast.Call) -> bool:
            """``GLOBAL.keys()`` of a mutable module-global dict."""
            return (isinstance(call.func, ast.Attribute)
                    and call.func.attr in ("keys", "values", "items")
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id in mutable_globals
                    and call.func.value.id not in local)

        def unordered_iter(iter_expr: ast.expr) -> Optional[str]:
            if tracker.is_set_valued(iter_expr):
                return f"set-valued '{_describe(iter_expr, module)}'"
            if isinstance(iter_expr, ast.Call) \
                    and global_dict_keys(iter_expr):
                return (f"module-global dict view "
                        f"'{_describe(iter_expr, module)}'")
            return None

        for node in walk_function_body(func):
            if isinstance(node, ast.Call):
                name = call_name(node, module)
                tail = tail_name(name)
                if name in WALLCLOCK_CALLS:
                    found = occ(READS_WALLCLOCK, node, f"{name}()")
                    if found:
                        yield found
                rng = _classify_rng(node, name, tail)
                if rng is not None:
                    found = occ(DRAWS_UNSEEDED_RNG, node, rng)
                    if found:
                        yield found
                if tail == "add_fault_listener":
                    found = occ(REGISTERS_FAULT_LISTENER, node,
                                _describe(node.func, module))
                    if found:
                        yield found
                if name in ARTIFACT_SINK_CALLS \
                        or tail in ARTIFACT_SINK_TAILS:
                    found = occ(EMITS_ARTIFACT, node, f"{name or tail}()")
                    if found:
                        yield found
                if tail in ("list", "tuple", "enumerate") and node.args:
                    detail = unordered_iter(node.args[0])
                    if detail is not None:
                        found = occ(ITERATES_UNORDERED, node,
                                    f"{tail}() over {detail}")
                        if found:
                            yield found
                # In-place mutation of a module global.
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr in MUTATOR_METHODS \
                        and isinstance(node.func.value, ast.Name):
                    target = node.func.value.id
                    if target in mutable_globals and target not in local:
                        found = occ(MUTATES_MODULE_GLOBAL, node,
                                    f"{target}.{node.func.attr}(...)")
                        if found:
                            yield found
            elif isinstance(node, ast.For):
                detail = unordered_iter(node.iter)
                if detail is not None:
                    found = occ(ITERATES_UNORDERED, node.iter,
                                f"for-loop over {detail}")
                    if found:
                        yield found
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    detail = unordered_iter(generator.iter)
                    if detail is not None:
                        found = occ(ITERATES_UNORDERED, generator.iter,
                                    f"comprehension over {detail}")
                        if found:
                            yield found
            elif isinstance(node, ast.Global):
                for name in node.names:
                    found = occ(MUTATES_MODULE_GLOBAL, node,
                                f"global {name}")
                    if found:
                        yield found
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else node.targets if isinstance(node, ast.Delete)
                           else [node.target])
                for target in targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    if isinstance(target.value, ast.Name):
                        name = target.value.id
                        if name in mutable_globals and name not in local:
                            found = occ(MUTATES_MODULE_GLOBAL, target,
                                        f"{name}[...] store")
                            if found:
                                yield found
                    if topology_keyed \
                            and not isinstance(node, ast.Delete) \
                            and isinstance(target.value, ast.Attribute):
                        found = occ(BUILDS_TOPOLOGY_KEYED_CACHE, target,
                                    _describe(target.value, module))
                        if found:
                            yield found

    # -- fixed point -------------------------------------------------------

    def _fixed_point(self) -> None:
        """Propagate callee effects to callers until stable."""
        effects: Dict[str, Set[str]] = {
            node_id: set(direct)
            for node_id, direct in self.direct.items()}
        callers: Dict[str, List[str]] = {}
        for caller, callees in self.graph.edges.items():
            for callee in callees:
                callers.setdefault(callee, []).append(caller)
        work = [node_id for node_id, eff in effects.items() if eff]
        while work:
            node_id = work.pop()
            spread = effects[node_id]
            for caller in callers.get(node_id, ()):  # pragma: no branch
                target = effects.setdefault(caller, set())
                before = len(target)
                target |= spread
                if len(target) != before:
                    work.append(caller)
        self.summary = {node_id: frozenset(eff)
                        for node_id, eff in effects.items()}

    # -- queries -----------------------------------------------------------

    def effects_of(self, node_id: str) -> FrozenSet[str]:
        """The transitive effect summary of one function."""
        return self.summary.get(node_id, frozenset())

    def chain(self, node_id: str, effect: str
              ) -> Tuple[List[str], Optional[EffectOccurrence]]:
        """A shortest call chain from ``node_id`` to a function whose
        *direct* effects include ``effect`` (BFS; for messages)."""
        if effect not in self.effects_of(node_id):
            return [], None
        seen = {node_id}
        queue: List[Tuple[str, List[str]]] = [(node_id, [node_id])]
        while queue:
            current, path = queue.pop(0)
            if effect in self.direct.get(current, ()):
                occurrence = next(
                    (o for o in self.occurrences.get(current, [])
                     if o.effect == effect), None)
                return path, occurrence
            for callee in sorted(self.graph.edges.get(current, ())):
                if callee not in seen \
                        and effect in self.effects_of(callee):
                    seen.add(callee)
                    queue.append((callee, path + [callee]))
        return [node_id], None  # pragma: no cover - summary guarantees


def _classify_rng(call: ast.Call, name: Optional[str],
                  tail: str) -> Optional[str]:
    """A human-readable description of an unseeded draw, or None."""
    if name is None:
        return None
    if name in SEEDABLE_CONSTRUCTORS and not call.args \
            and not call.keywords:
        return f"{name}() without a seed"
    root, _, rest = name.partition(".")
    if root == "random" and rest and tail in STDLIB_SAMPLERS:
        return f"{name}() on process-global state"
    if name.startswith("numpy.random.") and tail in NUMPY_SAMPLERS:
        return f"{name}() on the global numpy RNG"
    return None


def analyze_effects(graph: CallGraph) -> EffectAnalysis:
    """Run effect inference over a built call graph."""
    return EffectAnalysis(graph)
