"""Project-wide call graph: who calls whom, resolved at the AST.

The file-local rules of ISSUE 4 stop at module boundaries, and that is
exactly where the bugs that motivated ISSUE 9 lived: a ``time.time()``
two call-hops below a sharded worker, a topology-keyed cache four
modules away from the fault-listener registry.  This pass builds the
whole-program structure the effect inference (:mod:`.effects`) runs
its fixed point over:

* **nodes** -- every function and method defined in the analyzed file
  set, identified as ``<module>.<qualname>``
  (``repro.topology.routing.DijkstraRouter.invalidate``);
* **edges** -- resolved intra-project calls.  Resolution is
  deliberately syntactic but layered: module-level names, import
  aliases (including relative imports), ``self.method`` dispatch with
  base-class search, parameter/attribute type annotations
  (``topology: GridTopology`` makes ``topology.fail_satellite()``
  resolve), local ``x = ClassName(...)`` inference, decorator
  arguments (``@shard_memoized(_key)`` runs ``_key`` on every call),
  and -- only when a method name is defined by exactly one project
  class -- a unique-name fallback.  Callables passed as values
  (callbacks, ``run_sharded`` workers) contribute *reference* edges:
  handing a function away means it may run.

Unresolvable calls (the stdlib, numpy, truly dynamic dispatch) simply
contribute no edge; the analysis degrades to the file-local rules
rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .core import FuncDef, ModuleInfo

#: Return-annotation tails that mark a call as set-valued (iteration
#: order depends on PYTHONHASHSEED for str/object elements).
SET_ANNOTATION_TAILS = frozenset({"set", "frozenset", "Set", "FrozenSet",
                                  "AbstractSet", "MutableSet"})

#: Method names too generic for the unique-name fallback even when
#: only one project class currently defines them.
_FALLBACK_STOPLIST = frozenset({
    "get", "items", "keys", "values", "append", "add", "update", "pop",
    "copy", "clear", "close", "read", "write", "run", "send", "put",
})


def module_name(relpath: str) -> str:
    """Dotted module path of a (posix) relative file path.

    ``src/repro/experiments/cpu.py`` -> ``repro.experiments.cpu``;
    package ``__init__.py`` files name the package itself.
    """
    parts = relpath[:-3].split("/") if relpath.endswith(".py") \
        else relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionNode:
    """One function or method definition in the analyzed file set."""

    node_id: str
    modname: str
    qualname: str
    module: ModuleInfo
    func: FuncDef
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.func.name

    @property
    def lineno(self) -> int:
        return self.func.lineno


@dataclass
class ClassInfo:
    """One class definition plus the lookups method dispatch needs."""

    name: str
    modname: str
    node: ast.ClassDef
    #: method name -> function node id
    methods: Dict[str, str] = field(default_factory=dict)
    #: base-class names as written (tails of dotted expressions)
    bases: List[str] = field(default_factory=list)
    #: ``self.<attr>`` -> class name, inferred from ``__init__``
    #: annotations and annotated-parameter assignments.
    attr_types: Dict[str, str] = field(default_factory=dict)

    @property
    def node_id(self) -> str:
        return f"{self.modname}.{self.name}"


class _FunctionContext:
    """Per-function facts the resolver consults (cheap, one pass)."""

    def __init__(self) -> None:
        self.self_name: Optional[str] = None
        #: local variable -> project class name (annotations + ctor
        #: assignments), for ``var.method()`` dispatch.
        self.var_types: Dict[str, str] = {}
        #: names of immediately-nested function defs.
        self.nested: Dict[str, str] = {}


def walk_function_body(func: FuncDef) -> Iterable[ast.AST]:
    """Every AST node of a function, *excluding* nested def bodies.

    Nested functions and classes are their own call-graph nodes; their
    statements must not leak effects into the enclosing function.  The
    nested ``def`` node itself is yielded (its decorators and defaults
    run in the enclosing scope).
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            stack.extend(node.decorator_list)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(d for d in node.args.defaults if d)
                stack.extend(d for d in node.args.kw_defaults if d)
            continue
        stack.extend(ast.iter_child_nodes(node))


def _annotation_tail(node: Optional[ast.expr]) -> str:
    """Tail name of an annotation's base (``Optional[GridTopology]``
    unwraps to ``GridTopology``; plain names pass through)."""
    while isinstance(node, ast.Subscript):
        base = node.value
        tail = (base.id if isinstance(base, ast.Name)
                else base.attr if isinstance(base, ast.Attribute) else "")
        if tail in ("Optional", "Final", "ClassVar", "Annotated"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                node = inner.elts[0]
            else:
                node = inner
            continue
        node = base
        break
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip("'\"").split("[")[0].rsplit(".", 1)[-1]
    return ""


class CallGraph:
    """Resolved intra-project call/reference graph over a module set."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        #: node id -> FunctionNode
        self.nodes: Dict[str, FunctionNode] = {}
        #: caller id -> callee ids
        self.edges: Dict[str, Set[str]] = {}
        #: (modname, class name) -> ClassInfo
        self.classes: Dict[Tuple[str, str], ClassInfo] = {}
        #: class name -> infos (cross-module, possibly ambiguous)
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        #: method name -> node ids across all project classes
        self.methods_by_name: Dict[str, List[str]] = {}
        #: modname -> top-level name -> node id ("" for classes, whose
        #: value is looked up via ``classes``)
        self._toplevel_funcs: Dict[str, Dict[str, str]] = {}
        self._toplevel_classes: Dict[str, Dict[str, ClassInfo]] = {}
        #: modname -> local name -> absolute dotted import origin
        self._imports: Dict[str, Dict[str, str]] = {}
        #: id(FuncDef) -> node id, for rule lookups
        self._node_of_def: Dict[int, str] = {}
        #: id(ast.Call) -> resolved target node ids
        self.call_targets: Dict[int, Tuple[str, ...]] = {}
        self._modnames: Dict[str, ModuleInfo] = {}
        for module in self.modules:
            self._index_module(module)
        self._resolve_attr_types()
        for module in self.modules:
            for node_id in self._module_nodes.get(module.relpath, []):
                self._link_function(self.nodes[node_id])

    # -- indexing ----------------------------------------------------------

    def _index_module(self, module: ModuleInfo) -> None:
        modname = module_name(module.relpath)
        self._modnames[modname] = module
        self._toplevel_funcs.setdefault(modname, {})
        self._toplevel_classes.setdefault(modname, {})
        self._imports[modname] = self._absolute_imports(module, modname)
        self._module_nodes: Dict[str, List[str]]
        if not hasattr(self, "_module_nodes"):
            self._module_nodes = {}
        collected: List[str] = []

        def visit(parent: ast.AST, qual: List[str],
                  cls: Optional[ClassInfo]) -> None:
            for child in ast.iter_child_nodes(parent):
                if isinstance(child, ast.ClassDef):
                    info = ClassInfo(name=child.name, modname=modname,
                                     node=child)
                    for base in child.bases:
                        tail = (base.id if isinstance(base, ast.Name)
                                else base.attr
                                if isinstance(base, ast.Attribute) else "")
                        if tail:
                            info.bases.append(tail)
                    self.classes[(modname, child.name)] = info
                    self.classes_by_name.setdefault(
                        child.name, []).append(info)
                    if not qual:
                        self._toplevel_classes[modname][child.name] = info
                    visit(child, qual + [child.name], info)
                elif isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                    qualname = ".".join(qual + [child.name])
                    node_id = f"{modname}.{qualname}"
                    fnode = FunctionNode(
                        node_id=node_id, modname=modname,
                        qualname=qualname, module=module, func=child,
                        class_name=cls.name if cls is not None else None)
                    self.nodes[node_id] = fnode
                    self.edges.setdefault(node_id, set())
                    self._node_of_def[id(child)] = node_id
                    collected.append(node_id)
                    if not qual:
                        self._toplevel_funcs[modname][child.name] = node_id
                    if cls is not None and len(qual) == 1:
                        cls.methods[child.name] = node_id
                        self.methods_by_name.setdefault(
                            child.name, []).append(node_id)
                    visit(child, qual + [child.name], cls)
                else:
                    visit(child, qual, cls)

        visit(module.tree, [], None)
        self._module_nodes[module.relpath] = collected

    @staticmethod
    def _absolute_imports(module: ModuleInfo, modname: str
                          ) -> Dict[str, str]:
        """Local name -> absolute dotted origin, relative-aware."""
        is_package = module.relpath.endswith("__init__.py")
        parts = modname.split(".") if modname else []
        package = parts if is_package else parts[:-1]
        imports: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname
                        else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    base = node.module or ""
                else:
                    anchor = package[:len(package) - (node.level - 1)] \
                        if node.level - 1 <= len(package) else []
                    base = ".".join(anchor + (node.module.split(".")
                                              if node.module else []))
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports[local] = (f"{base}.{alias.name}" if base
                                      else alias.name)
        return imports

    def _resolve_attr_types(self) -> None:
        """Infer ``self.<attr>`` class types from each ``__init__``."""
        for info in self.classes.values():
            init_id = info.methods.get("__init__")
            if init_id is None:
                continue
            init = self.nodes[init_id].func
            if not init.args.args:
                continue
            self_name = init.args.args[0].arg
            param_types: Dict[str, str] = {}
            for arg in (init.args.posonlyargs + init.args.args
                        + init.args.kwonlyargs):
                tail = _annotation_tail(arg.annotation)
                if tail in self.classes_by_name:
                    param_types[arg.arg] = tail
            for node in walk_function_body(init):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    annotation = node.annotation
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name):
                    continue
                tail = _annotation_tail(annotation)
                if tail in self.classes_by_name:
                    info.attr_types[target.attr] = tail
                elif isinstance(value, ast.Name) \
                        and value.id in param_types:
                    info.attr_types[target.attr] = param_types[value.id]
                elif (isinstance(value, ast.Call)
                      and isinstance(value.func, ast.Name)
                      and value.func.id in self.classes_by_name):
                    info.attr_types[target.attr] = value.func.id

    # -- resolution --------------------------------------------------------

    def node_for_def(self, func: FuncDef) -> Optional[str]:
        """The node id of a definition encountered by a rule, if any."""
        return self._node_of_def.get(id(func))

    def function_nodes_of(self, module: ModuleInfo
                          ) -> List[FunctionNode]:
        """Every function node defined in one module, in source order."""
        ids = self._module_nodes.get(module.relpath, [])
        return [self.nodes[node_id] for node_id in ids]

    def class_info(self, modname: str, name: str) -> Optional[ClassInfo]:
        """The class defined as ``name`` in module ``modname``, if any."""
        return self.classes.get((modname, name))

    def lookup_class(self, name: str, modname: str) -> Optional[ClassInfo]:
        """A class by source name: same module first, else unique
        global match, else the import table."""
        info = self.classes.get((modname, name))
        if info is not None:
            return info
        origin = self._imports.get(modname, {}).get(name)
        if origin is not None:
            resolved = self._class_for_dotted(origin)
            if resolved is not None:
                return resolved
        candidates = self.classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _class_for_dotted(self, dotted: str) -> Optional[ClassInfo]:
        mod, _, name = dotted.rpartition(".")
        info = self.classes.get((mod, name))
        if info is not None:
            return info
        # Re-exported through a package __init__: fall back to the
        # unique definition anywhere in the project.
        candidates = self.classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _method_on(self, info: ClassInfo, name: str,
                   _depth: int = 0) -> Optional[str]:
        """Method lookup with project base-class search (depth-capped)."""
        node_id = info.methods.get(name)
        if node_id is not None or _depth > 4:
            return node_id
        for base in info.bases:
            base_info = self.lookup_class(base, info.modname)
            if base_info is not None and base_info is not info:
                found = self._method_on(base_info, name, _depth + 1)
                if found is not None:
                    return found
        return None

    def _func_for_dotted(self, dotted: str) -> Tuple[str, ...]:
        """Resolve an absolute dotted name to function node ids."""
        mod, _, name = dotted.rpartition(".")
        if not name:
            return ()
        node_id = self._toplevel_funcs.get(mod, {}).get(name)
        if node_id is not None:
            return (node_id,)
        info = self._toplevel_classes.get(mod, {}).get(name)
        if info is None:
            info = self._class_for_dotted(dotted)
        if info is not None:
            init = self._method_on(info, "__init__")
            post = self._method_on(info, "__post_init__")
            return tuple(i for i in (init, post) if i is not None)
        # module.Class.method
        mod2, _, cls = mod.rpartition(".")
        if cls:
            info = self.classes.get((mod2, cls))
            if info is not None:
                found = self._method_on(info, name)
                if found is not None:
                    return (found,)
        # Re-exported function: unique global top-level name.
        candidates = [
            fid for funcs in self._toplevel_funcs.values()
            for fname, fid in funcs.items() if fname == name]
        if len(candidates) == 1 and "." in dotted:
            prefix = dotted.rsplit(".", 2)[0]
            if prefix in self._modnames or any(
                    m.startswith(prefix) for m in self._modnames):
                return (candidates[0],)
        return ()

    def resolve_callable_ref(self, expr: ast.expr,
                             fnode: FunctionNode) -> Tuple[str, ...]:
        """Node ids a callable-valued expression may refer to
        (``run_sharded(_trial, ...)``-style first arguments)."""
        ctx = self._context_for(fnode)
        return self._resolve_target(expr, fnode, ctx)

    def _context_for(self, fnode: FunctionNode) -> _FunctionContext:
        ctx = _FunctionContext()
        func = fnode.func
        args = (func.args.posonlyargs + func.args.args
                + func.args.kwonlyargs)
        if fnode.class_name is not None and func.args.args:
            ctx.self_name = func.args.args[0].arg
        for arg in args:
            tail = _annotation_tail(arg.annotation)
            if tail in self.classes_by_name:
                ctx.var_types[arg.arg] = tail
        for node in walk_function_body(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ctx.nested[node.name] = f"{fnode.node_id}.{node.name}"
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                if (isinstance(node.value, ast.Call)
                        and isinstance(node.value.func, ast.Name)
                        and node.value.func.id in self.classes_by_name):
                    ctx.var_types[name] = node.value.func.id
        return ctx

    def _resolve_target(self, expr: ast.expr, fnode: FunctionNode,
                        ctx: _FunctionContext) -> Tuple[str, ...]:
        modname = fnode.modname
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in ctx.nested:
                return (ctx.nested[name],)
            node_id = self._toplevel_funcs.get(modname, {}).get(name)
            if node_id is not None:
                return (node_id,)
            info = self._toplevel_classes.get(modname, {}).get(name)
            if info is not None:
                init = self._method_on(info, "__init__")
                post = self._method_on(info, "__post_init__")
                return tuple(i for i in (init, post) if i is not None)
            origin = self._imports.get(modname, {}).get(name)
            if origin is not None:
                return self._func_for_dotted(origin)
            return ()
        if isinstance(expr, ast.Attribute):
            # Fully-dotted module path (``planner.record_decision``).
            dotted = self._dotted_via_imports(expr, modname)
            if dotted is not None:
                resolved = self._func_for_dotted(dotted)
                if resolved:
                    return resolved
            receiver = expr.value
            attr = expr.attr
            # self.method() / self.attr.method()
            if isinstance(receiver, ast.Name):
                if receiver.id == ctx.self_name \
                        and fnode.class_name is not None:
                    info = self.classes.get((modname, fnode.class_name))
                    if info is not None:
                        found = self._method_on(info, attr)
                        if found is not None:
                            return (found,)
                cls_name = ctx.var_types.get(receiver.id)
                if cls_name is not None:
                    target = self.lookup_class(cls_name, modname)
                    if target is not None:
                        found = self._method_on(target, attr)
                        if found is not None:
                            return (found,)
                # ClassName.method(...) as an unbound reference.
                as_class = self.lookup_class(receiver.id, modname) \
                    if receiver.id in self.classes_by_name else None
                if as_class is not None:
                    found = self._method_on(as_class, attr)
                    if found is not None:
                        return (found,)
            elif (isinstance(receiver, ast.Attribute)
                  and isinstance(receiver.value, ast.Name)
                  and receiver.value.id == ctx.self_name
                  and fnode.class_name is not None):
                info = self.classes.get((modname, fnode.class_name))
                if info is not None:
                    cls_name = info.attr_types.get(receiver.attr)
                    if cls_name is not None:
                        target = self.lookup_class(cls_name, modname)
                        if target is not None:
                            found = self._method_on(target, attr)
                            if found is not None:
                                return (found,)
            # Unique-name fallback: one project class defines it.
            if attr not in _FALLBACK_STOPLIST:
                candidates = self.methods_by_name.get(attr, [])
                if len(candidates) == 1:
                    return (candidates[0],)
        return ()

    def _dotted_via_imports(self, node: ast.Attribute,
                            modname: str) -> Optional[str]:
        parts: List[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self._imports.get(modname, {}).get(current.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    # -- edge construction -------------------------------------------------

    def _link_function(self, fnode: FunctionNode) -> None:
        ctx = self._context_for(fnode)
        edges = self.edges[fnode.node_id]

        def link_call(call: ast.Call) -> None:
            targets = self._resolve_target(call.func, fnode, ctx)
            if targets:
                self.call_targets[id(call)] = targets
                edges.update(targets)
            # Project functions handed away as arguments may run.
            for arg in list(call.args) + [k.value for k in call.keywords]:
                if isinstance(arg, (ast.Name, ast.Attribute)):
                    edges.update(self._resolve_target(arg, fnode, ctx))

        for node in walk_function_body(fnode.func):
            if isinstance(node, ast.Call):
                link_call(node)
        for decorator in fnode.func.decorator_list:
            if isinstance(decorator, ast.Call):
                for arg in (list(decorator.args)
                            + [k.value for k in decorator.keywords]):
                    if isinstance(arg, (ast.Name, ast.Attribute)):
                        edges.update(
                            self._resolve_target(arg, fnode, ctx))

    def returns_set(self, node_id: str) -> bool:
        """Whether a project function's return annotation is a set."""
        fnode = self.nodes.get(node_id)
        if fnode is None:
            return False
        return _annotation_tail(fnode.func.returns) in SET_ANNOTATION_TAILS


def build_callgraph(modules: Sequence[ModuleInfo]) -> CallGraph:
    """Construct the project call graph over parsed modules."""
    return CallGraph(modules)
