"""Analyzer driver: collect files, run rules, gate on the baseline.

``analyze`` is the library entry point (the self-test calls it
directly); ``lint_main`` is the ``repro lint`` subcommand.  The root
against which paths are reported is found by walking up from the
first analyzed path to the directory holding ``pyproject.toml`` (or
``.git``), so fingerprints and scopes are stable no matter where the
command is invoked from.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .baseline import BASELINE_FILENAME, Baseline
from .core import Finding, ModuleInfo, ProjectContext, Rule
from .registry import get_rules
from .reporting import build_report, render_json, render_text

#: Rule id reserved for files the analyzer cannot parse.
PARSE_ERROR_RULE = "parse-error"


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    root: Path
    files: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    #: The project context the rules ran against -- kept so callers
    #: (``--graph``) can export the call graph and effect summaries
    #: without re-parsing.
    project: Optional[ProjectContext] = None

    @property
    def files_checked(self) -> int:
        return len(self.files)


def find_project_root(start: Path) -> Path:
    """Nearest ancestor with pyproject.toml or .git, else ``start``."""
    start = start.resolve()
    candidates = [start] if start.is_dir() else [start.parent]
    for ancestor in [candidates[0]] + list(candidates[0].parents):
        if (ancestor / "pyproject.toml").exists() \
                or (ancestor / ".git").exists():
            return ancestor
    return candidates[0]


def default_target() -> Tuple[List[Path], Path]:
    """The package's own source tree and its repo root.

    Used when ``repro lint`` is invoked with no paths: analyze the
    installed ``repro`` package sources, rooted at the repo checkout.
    """
    package_dir = Path(__file__).resolve().parents[1]
    return [package_dir], find_project_root(package_dir)


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        path = path.resolve()
        if path.is_dir():
            files.extend(p for p in path.rglob("*.py")
                         if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or dir: {path}")
    return sorted(set(files))


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def load_module(path: Path, root: Path) -> Tuple[Optional[ModuleInfo],
                                                 Optional[Finding]]:
    """Parse one file; on syntax errors return a parse-error finding."""
    relpath = _relpath(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return None, Finding(
            rule=PARSE_ERROR_RULE, path=relpath,
            line=error.lineno or 0,
            message=f"cannot parse: {error.msg}")
    return ModuleInfo(path, relpath, source, tree), None


def _finalize(findings: List[Finding]) -> List[Finding]:
    """Sort and fingerprint findings (content-addressed, drift-proof)."""
    findings.sort(key=Finding.sort_key)
    seen: Dict[Tuple[str, str, str], int] = {}
    for finding in findings:
        # Keyed on (rule, path, message, ordinal) -- not the line
        # number -- so a baseline survives edits elsewhere in the file.
        key = (finding.rule, finding.path, finding.message)
        ordinal = seen.get(key, 0)
        seen[key] = ordinal + 1
        digest = hashlib.sha256(
            f"{finding.rule}|{finding.path}|{finding.message}|{ordinal}"
            .encode()).hexdigest()
        finding.fingerprint = digest[:16]
    return findings


def analyze(paths: Sequence[Path], root: Optional[Path] = None,
            rules: Optional[Sequence[Rule]] = None) -> AnalysisResult:
    """Run the rule set over the given files/directories."""
    if root is None:
        root = find_project_root(Path(paths[0]))
    root = root.resolve()
    if rules is None:
        rules = get_rules()
    result = AnalysisResult(root=root)
    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    for path in collect_files(paths):
        module, parse_error = load_module(path, root)
        if parse_error is not None:
            result.files.append(parse_error.path)
            findings.append(parse_error)
            continue
        assert module is not None
        result.files.append(module.relpath)
        modules.append(module)
    project = ProjectContext(root, modules)
    result.project = project
    for module in modules:
        for rule in rules:
            if not rule.applies_to(module.relpath):
                continue
            for finding in rule.check(module, project):
                finding.severity = rule.severity
                if rule.suppressible and module.is_suppressed(
                        finding.line, finding.rule):
                    result.suppressed += 1
                else:
                    findings.append(finding)
    result.findings = _finalize(findings)
    return result


#: Schema version of the ``--graph`` export document.
GRAPH_SCHEMA_VERSION = 1


def render_graph(result: AnalysisResult) -> str:
    """The call graph + effect summaries as a JSON document.

    One artifact per lint run (CI uploads it): every project function
    with its resolved callees, direct effects, transitive summary, and
    the concrete source occurrences each effect traces back to.
    """
    import json

    assert result.project is not None
    graph = result.project.callgraph()
    effects = result.project.effects()
    functions = {}
    for node_id in sorted(graph.nodes):
        fnode = graph.nodes[node_id]
        functions[node_id] = {
            "path": fnode.module.relpath,
            "line": fnode.lineno,
            "calls": sorted(graph.edges.get(node_id, ())),
            "direct_effects": sorted(effects.direct.get(node_id, ())),
            "effects": sorted(effects.effects_of(node_id)),
        }
    occurrences = [
        occ.to_dict()
        for node_id in sorted(effects.occurrences)
        for occ in effects.occurrences[node_id]]
    document = {
        "version": GRAPH_SCHEMA_VERSION,
        "root": str(result.root),
        "files_checked": result.files_checked,
        "functions": functions,
        "effect_sources": occurrences,
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# The ``repro lint`` subcommand
# ---------------------------------------------------------------------------

def lint_main(paths: Sequence[str], *,
              format: str = "text",
              output: Optional[str] = None,
              baseline_path: Optional[str] = None,
              no_baseline: bool = False,
              write_baseline: bool = False,
              rule_ids: Optional[Sequence[str]] = None,
              list_rules: bool = False,
              graph_output: Optional[str] = None) -> int:
    """Everything behind ``repro lint``; returns the exit code."""
    if list_rules:
        for rule in get_rules():
            scope = ", ".join(rule.scope) if rule.scope else "all files"
            print(f"{rule.id:22s} [{rule.family}] ({scope})")
            print(f"{'':22s} {rule.description}")
        return 0

    try:
        rules = get_rules(rule_ids)
    except KeyError as error:
        print(error.args[0])
        return 2

    if paths:
        targets = [Path(p) for p in paths]
        root = find_project_root(targets[0])
    else:
        targets, root = default_target()

    result = analyze(targets, root=root, rules=rules)

    if graph_output:
        Path(graph_output).write_text(render_graph(result))
        print(f"wrote {graph_output}")

    baseline_file = (Path(baseline_path) if baseline_path
                     else result.root / BASELINE_FILENAME)
    baseline = Baseline(path=baseline_file) if no_baseline \
        else Baseline.load(baseline_file)

    if write_baseline:
        written = baseline.write(result.findings, baseline_file)
        print(f"wrote {len(result.findings)} finding(s) to {written}")
        return 0

    new, baselined, stale = baseline.partition(result.findings)
    report = build_report(
        root=str(result.root), files_checked=result.files_checked,
        rule_ids=[rule.id for rule in rules], new=new,
        baselined=baselined, suppressed=result.suppressed, stale=stale)
    rendered = render_json(report) if format == "json" \
        else render_text(report)
    if output:
        Path(output).write_text(rendered)
        print(f"wrote {output}")
    else:
        print(rendered, end="")
    return 1 if new else 0
