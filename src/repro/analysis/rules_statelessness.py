"""Statelessness rule: the paper's Fig. 9 contract, checked at the AST.

SpaceCore moves per-UE session state *into the UE* (encrypted state
replicas) and addresses users geospatially, so the network functions
riding satellites hold no durable per-UE state.  Concretely: a class
on the SpaceCore path must not assign a mutable per-UE container
(``self._sessions = {}``-style) in its methods.

Two escape hatches, both explicit:

* the **stateful-baseline allowlist** -- the legacy 5G NFs
  (:data:`STATEFUL_BASELINE_CLASSES`) exist precisely to model the
  stateful architecture the paper argues against, so their per-UE
  tables are the point, not a bug;
* an inline ``# repro: ignore[stateful-nf] -- <why>`` for state that
  is *ephemeral by contract*, e.g. the served-session table a
  satellite keeps only while a radio session is live (exactly what
  Fig. 19 says a hijacker can steal, and nothing more).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from .core import (
    Finding,
    ModuleInfo,
    ProjectContext,
    Rule,
    annotation_source,
    is_mutable_container,
)
from .registry import register

#: Legacy NFs modelling the stateful baseline (Fig. 9 left-hand side).
STATEFUL_BASELINE_CLASSES = frozenset({
    "Amf", "Ausf", "Smf", "Udm", "Udsf", "Upf", "Pcf",
})

#: Attribute or annotation vocabulary that marks state as per-UE.
_PER_UE_RE = re.compile(
    r"ue|supi|imsi|guti|tmsi|session|subscriber|context|bearer|"
    r"served|serving|paging|registration",
    re.IGNORECASE)

#: Annotation roots that denote mutable containers.
_MUTABLE_ANNOTATION_TAILS = frozenset({
    "Dict", "dict", "List", "list", "Set", "set", "DefaultDict",
    "defaultdict", "OrderedDict", "Counter", "deque",
    "MutableMapping", "MutableSequence", "MutableSet",
})


def _annotation_is_mutable(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    base = node.value if isinstance(node, ast.Subscript) else node
    if isinstance(base, ast.Name):
        return base.id in _MUTABLE_ANNOTATION_TAILS
    if isinstance(base, ast.Attribute):
        return base.attr in _MUTABLE_ANNOTATION_TAILS
    return False


@register
class StatefulNfRule(Rule):
    """Flag per-UE mutable containers on SpaceCore-path classes."""

    id = "stateful-nf"
    family = "statelessness"
    description = ("SpaceCore-path NF classes must not hold per-UE "
                   "mutable state on self (Fig. 9: the UE carries its "
                   "session state); allowlist covers the stateful "
                   "baseline NFs")
    scope = ("fiveg/nf/", "core/spacecore.py", "core/satellite.py")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield per-UE ``self.<x> = {}``-style assigns off-allowlist."""
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            if class_node.name in STATEFUL_BASELINE_CLASSES:
                continue
            yield from self._check_class(module, class_node)

    def _check_class(self, module: ModuleInfo,
                     class_node: ast.ClassDef) -> Iterable[Finding]:
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if not method.args.args:
                continue
            self_name = method.args.args[0].arg
            for node in ast.walk(method):
                finding = self._check_assign(
                    module, class_node, self_name, node)
                if finding is not None:
                    yield finding

    def _check_assign(self, module: ModuleInfo,
                      class_node: ast.ClassDef, self_name: str,
                      node: ast.AST) -> Optional[Finding]:
        annotation: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets = node.targets
            value: Optional[ast.expr] = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
            annotation = node.annotation
        else:
            return None
        for target in targets:
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name):
                continue
            mutable = (_annotation_is_mutable(annotation)
                       or (value is not None
                           and is_mutable_container(value, module)))
            if not mutable:
                continue
            per_ue = bool(_PER_UE_RE.search(target.attr)
                          or _PER_UE_RE.search(
                              annotation_source(annotation)))
            if not per_ue:
                continue
            return module.finding(
                self.id, node,
                f"{class_node.name}.{target.attr} is a per-UE mutable "
                f"container on a SpaceCore-path class; UE state "
                f"belongs in the UE's state replica (Fig. 9).  If "
                f"this is ephemeral radio-session state or a stateful "
                f"baseline, allowlist the class or add "
                f"'# repro: ignore[{self.id}] -- <why>'")
        return None
