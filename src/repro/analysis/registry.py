"""Rule registry: rules self-register at import time.

Adding a rule is three steps (see DESIGN.md "Static analysis &
invariants"): subclass :class:`~repro.analysis.core.Rule` in one of
the ``rules_*`` modules (or a new one), decorate it with
:func:`register`, and -- if you created a new module -- import it from
:data:`RULE_MODULES` below.  The CLI, the baseline machinery, and the
self-test all discover rules exclusively through this registry.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Optional, Sequence, Type

from .core import Rule

#: Modules whose import populates the registry.
RULE_MODULES = (
    "repro.analysis.rules_determinism",
    "repro.analysis.rules_statelessness",
    "repro.analysis.rules_cachekeys",
    "repro.analysis.rules_frozen",
    "repro.analysis.rules_typing",
    "repro.analysis.rules_interprocedural",
    "repro.analysis.rules_suppressions",
)

_RULES: Dict[str, Rule] = {}
_loaded = False


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index a rule by its id."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no id")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _RULES[rule.id] = rule
    return rule_cls


def _ensure_loaded() -> None:
    global _loaded
    if not _loaded:
        for name in RULE_MODULES:
            importlib.import_module(name)
        _loaded = True


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    _ensure_loaded()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rules(ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """The named rules (every rule when ``ids`` is None).

    Unknown ids raise ``KeyError`` with the known ids in the message,
    so a typo in ``--rules`` fails loudly instead of silently checking
    nothing.
    """
    rules = all_rules()
    if ids is None:
        return rules
    known = {rule.id: rule for rule in rules}
    missing = [rule_id for rule_id in ids if rule_id not in known]
    if missing:
        raise KeyError(
            f"unknown rule ids {missing}; known: {sorted(known)}")
    return [known[rule_id] for rule_id in ids]
