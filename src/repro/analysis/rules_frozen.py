"""Frozen-mutation rule: snapshot types stay snapshots.

The hot paths lean on value types that are immutable *by contract*:
frozen dataclasses (``Constellation``, ``GroundStation``, message and
state records) and documented snapshot types like
``ConstellationSnapshot`` whose arrays are marked read-only.  Shared
caches (the epoch-keyed snapshot LRU, shard-local memo dicts) hand the
same object to many callers, so one in-place mutation corrupts every
future cache hit.

Attribute assignment through ``self`` inside the class's own methods
is exempt (``__init__``/``__post_init__`` construction); everything
else -- plain assignment, augmented assignment, ``setattr`` /
``object.__setattr__`` -- on a value *known* to be a frozen type is
a finding.  "Known" is deliberately conservative: a parameter or
variable annotated with the frozen type, or a local assigned directly
from its constructor.  No cross-function inference, no false
positives.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional

from .core import (
    Finding,
    FuncDef,
    ModuleInfo,
    ProjectContext,
    Rule,
    dotted_name,
    iter_functions,
    tail_name,
)
from .registry import register


def _frozen_class_of(node: Optional[ast.expr], module: ModuleInfo,
                     project: ProjectContext) -> Optional[str]:
    """The frozen class a name/annotation refers to, or None.

    Accepts bare names, dotted names, ``Optional[Frozen]`` and string
    annotations whose text is the class name.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        candidate = node.value.strip().strip("'\"")
        return candidate if candidate in project.frozen_classes else None
    if isinstance(node, ast.Subscript):
        base = node.value
        base_tail = (base.id if isinstance(base, ast.Name)
                     else base.attr if isinstance(base, ast.Attribute)
                     else "")
        if base_tail == "Optional":
            return _frozen_class_of(node.slice, module, project)
        return None
    name = tail_name(dotted_name(node, module))
    return name if name in project.frozen_classes else None


@register
class FrozenMutationRule(Rule):
    """Flag attribute assignment on known-frozen snapshot objects."""

    id = "frozen-mutation"
    family = "frozen"
    description = ("attribute assignment on frozen dataclasses / "
                   "snapshot types mutates shared cached objects; "
                   "build a new instance (dataclasses.replace) instead")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield every mutation of a known-frozen local or param."""
        for func, enclosing in iter_functions(module.tree):
            exempt_self = ""
            if (enclosing is not None
                    and enclosing.name in project.frozen_classes
                    and func.args.args):
                # The frozen class's own methods may build self.
                exempt_self = func.args.args[0].arg
            frozen_vars = self._frozen_locals(func, module, project)
            frozen_vars.pop(exempt_self, None)
            yield from self._check_mutations(
                module, func, frozen_vars)

    def _frozen_locals(self, func: FuncDef, module: ModuleInfo,
                       project: ProjectContext) -> Dict[str, str]:
        """Local name -> frozen class, from annotations and ctors."""
        frozen: Dict[str, str] = {}
        args = func.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            cls = _frozen_class_of(arg.annotation, module, project)
            if cls is not None:
                frozen[arg.arg] = cls
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name):
                cls = _frozen_class_of(node.annotation, module, project)
                if cls is not None:
                    frozen[node.target.id] = cls
            elif isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call):
                cls = tail_name(dotted_name(node.value.func, module))
                if cls in project.frozen_classes:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            frozen[target.id] = cls
        return frozen

    def _check_mutations(self, module: ModuleInfo, func: FuncDef,
                         frozen_vars: Dict[str, str]
                         ) -> Iterable[Finding]:
        if not frozen_vars:
            return
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in frozen_vars):
                        cls = frozen_vars[target.value.id]
                        yield module.finding(
                            self.id, node,
                            f"assignment to {target.value.id}."
                            f"{target.attr} mutates frozen {cls}; "
                            f"use dataclasses.replace or build a new "
                            f"instance")
            elif isinstance(node, ast.Call):
                name = tail_name(dotted_name(node.func, module))
                if name != "__setattr__" and name != "setattr":
                    continue
                if not node.args:
                    continue
                first = node.args[0]
                if (isinstance(first, ast.Name)
                        and first.id in frozen_vars):
                    cls = frozen_vars[first.id]
                    yield module.finding(
                        self.id, node,
                        f"setattr on {first.id} mutates frozen {cls}; "
                        f"use dataclasses.replace or build a new "
                        f"instance")
