"""Determinism rules: seeded randomness and simulated time only.

The sharded parallel runtime (PR 3) promises bit-identical output
whether an experiment runs serially or on sixteen workers.  That
promise dies the moment any code path

* draws from the *module-level* ``random`` / ``numpy.random`` state
  (worker processes each have their own, differently-warmed copy),
* derives a seed or cache key through the builtin ``hash()`` (salted
  per process via ``PYTHONHASHSEED`` -- the exact bug ``seed_for``
  was introduced to fix), or
* reads the wall clock inside simulated code (``sim/``, ``runtime/``,
  ``experiments/``, ``fiveg/``, ``core/``, ``faults/`` and ``obs/``
  must run on the Simulator's clock; wall-clock reads make reruns
  diverge).  Since ISSUE 5 this includes ``time.perf_counter`` and
  ``time.monotonic``: the SBI mesh was stamping handler latency with
  ``perf_counter`` and feeding it into the recorded artifacts, which
  is exactly the feeding-wall-time-into-the-computation bug.  Timing
  a benchmark is still fine -- ``benchmarks/`` and the CLI front end
  are outside the rule's scope.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from .core import (
    Finding,
    ModuleInfo,
    ProjectContext,
    Rule,
    call_name,
    tail_name,
)
from .registry import register

#: ``random.<fn>`` draws on shared module state; any use is a finding.
STDLIB_SAMPLERS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "paretovariate",
    "triangular", "vonmisesvariate", "weibullvariate", "getrandbits",
    "randbytes", "seed",
})

#: Legacy ``numpy.random.<fn>`` draws on the global numpy state.
NUMPY_SAMPLERS = frozenset({
    "random", "rand", "randn", "randint", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "poisson", "normal",
    "uniform", "exponential", "binomial", "geometric", "gamma", "beta",
    "standard_normal", "multinomial", "seed",
})

#: Constructors that are fine *seeded* but findings bare.
SEEDABLE_CONSTRUCTORS = frozenset({
    "random.Random", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.RandomState", "numpy.random.SeedSequence",
})

#: Call targets that consume a seed; ``hash()`` flowing into one is
#: the PYTHONHASHSEED reproducibility bug.
SEED_SINK_TAILS = frozenset({
    "Random", "RandomState", "default_rng", "SeedSequence", "seed",
    "seed_for", "shard_seeds",
})

#: Wall-clock reads that must not appear in simulated code.  The
#: monotonic timers are included: their *values* are as process-local
#: and non-reproducible as ``time.time()``, and once one lands in a
#: metric or artifact (the ISSUE 5 SBI bug) determinism is gone.
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_SEEDY = ("seed", "key", "rng")


def _name_is_seedy(name: str) -> bool:
    lowered = name.lower()
    return any(word in lowered for word in _SEEDY)


@register
class UnseededRngRule(Rule):
    """Flag draws from shared RNG state and unseeded RNG construction."""

    id = "unseeded-rng"
    family = "determinism"
    description = ("module-level random/np.random draws and unseeded "
                   "RNG constructors break cross-shard reproducibility")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield every global-state draw and bare RNG construction."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, module)
            if name is None:
                continue
            if name in SEEDABLE_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield module.finding(
                        self.id, node,
                        f"{name}() constructed without a seed; pass a "
                        f"seed (derive per-shard seeds via seed_for)")
                continue
            root, _, rest = name.partition(".")
            fn = tail_name(name)
            if root == "random" and rest and fn in STDLIB_SAMPLERS:
                yield module.finding(
                    self.id, node,
                    f"{name}() draws from the process-global random "
                    f"state; use a seeded random.Random instance")
            elif (name.startswith("numpy.random.")
                  and fn in NUMPY_SAMPLERS):
                yield module.finding(
                    self.id, node,
                    f"{name}() draws from the global numpy RNG; use "
                    f"np.random.default_rng(seed_for(...)) instead")


@register
class HashSeedRule(Rule):
    """Flag builtin ``hash()`` feeding seed or key derivation."""

    id = "hash-seed"
    family = "determinism"
    description = ("builtin hash() is salted per process "
                   "(PYTHONHASHSEED); deriving seeds/keys from it "
                   "breaks cross-process determinism -- use "
                   "runtime.parallel.seed_for")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield every ``hash()`` call that flows into a seed or key."""
        hash_calls = self._builtin_hash_calls(module)
        if not hash_calls:
            return
        flagged: Set[int] = set()
        for node in ast.walk(module.tree):
            # hash() assigned to a seed/key-named variable.
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                if node.value is None:
                    continue
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                if not any(_name_is_seedy(n) for n in names):
                    continue
                for call in self._contained(node.value, hash_calls):
                    flagged.add(id(call))
                    yield module.finding(
                        self.id, call,
                        f"hash() result bound to {names[0]!r}: salted "
                        f"per process; use seed_for/hashlib")
            # hash() passed (possibly through arithmetic) to a seed sink.
            elif isinstance(node, ast.Call):
                if tail_name(call_name(node, module)) not in SEED_SINK_TAILS:
                    continue
                for argument in list(node.args) + [
                        kw.value for kw in node.keywords]:
                    for call in self._contained(argument, hash_calls):
                        if id(call) in flagged:
                            continue
                        flagged.add(id(call))
                        yield module.finding(
                            self.id, call,
                            "hash() used in a seed derivation: salted "
                            "per process; use seed_for/hashlib")
        # hash() anywhere inside a function whose name says seed/key.
        for func_name, call in self._calls_in_seedy_functions(module):
            if id(call) not in flagged:
                flagged.add(id(call))
                yield module.finding(
                    self.id, call,
                    f"hash() inside {func_name}(): salted per process; "
                    f"use seed_for/hashlib for stable derivation")

    @staticmethod
    def _builtin_hash_calls(module: ModuleInfo) -> Set[int]:
        calls: Set[int] = set()
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "hash"):
                calls.add(id(node))
        return calls

    @staticmethod
    def _contained(node: ast.expr, hash_calls: Set[int]
                   ) -> List[ast.Call]:
        return [n for n in ast.walk(node)
                if isinstance(n, ast.Call) and id(n) in hash_calls]

    @staticmethod
    def _calls_in_seedy_functions(module: ModuleInfo
                                  ) -> List[tuple]:
        out: List[tuple] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if not _name_is_seedy(node.name):
                continue
            for inner in ast.walk(node):
                if (isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id == "hash"):
                    out.append((node.name, inner))
        return out


@register
class WallclockRule(Rule):
    """Flag wall-clock reads inside simulated code."""

    id = "wallclock-time"
    family = "determinism"
    description = ("time.time()/perf_counter()/datetime.now() inside "
                   "simulated code makes reruns diverge; use the "
                   "Simulator clock, an injectable clock, or pass "
                   "timestamps in")
    scope = ("sim/", "runtime/", "experiments/", "fiveg/", "core/",
             "faults/", "obs/")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield every wall-clock read in scoped (simulated) code."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, module)
            if name in WALLCLOCK_CALLS:
                yield module.finding(
                    self.id, node,
                    f"{name}() reads the wall clock inside simulated "
                    f"code; use Simulator.now or an explicit t")
