"""Interprocedural rules over the whole-program effect summaries.

Every rule here asks a question the file-local linter (ISSUE 4)
cannot: the answer depends on the *transitive closure* of a function,
not its body.  Each is a direct generalisation of a bug this repo
actually shipped and later hand-fixed:

* ``shard-purity`` -- the PR 5 wall-clock leak, as a contract: any
  worker dispatched through ``runtime.parallel.run_sharded`` must be
  transitively free of wall-clock reads, unseeded draws and mutable
  module-global writes, or serial and sharded runs diverge;
* ``stale-cache`` -- the PR 8 ``DijkstraRouter`` staleness bug, as a
  rule: a cache keyed on ``GridTopology`` fault state must register
  invalidation through ``add_fault_listener``;
* ``unordered-iteration`` -- set iteration feeding a JSON/golden/merge
  sink without ``sorted(...)`` bakes ``PYTHONHASHSEED`` into artifact
  bytes;
* ``float-reduction-order`` -- ``sum()`` over an unordered collection
  in the merge/artifact layers makes float totals order-dependent;
* ``listener-leak`` -- a listener registry holding strong references
  pins routers (and their caches) alive forever; ``grid.py``'s
  ``WeakMethod`` pattern is the contract.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from ..runtime.memo import MEMO_DECORATOR_NAMES
from .core import (
    Finding,
    FuncDef,
    ModuleInfo,
    ProjectContext,
    Rule,
    call_name,
    dotted_name,
    tail_name,
)
from .effects import (
    BUILDS_TOPOLOGY_KEYED_CACHE,
    DRAWS_UNSEEDED_RNG,
    EMITS_ARTIFACT,
    ITERATES_UNORDERED,
    MUTATES_MODULE_GLOBAL,
    READS_WALLCLOCK,
    REGISTERS_FAULT_LISTENER,
    SHARD_IMPURE_EFFECTS,
    EffectAnalysis,
    _SetTracker,
)
from .registry import register

#: Fan-out entry points whose first argument is a shard worker.
SHARD_DISPATCHERS = frozenset({"run_sharded"})

#: Parameter names/annotations marking a memo key as topology-derived.
_TOPOLOGY_PARAM_NAMES = frozenset({"topology", "grid", "grid_topology"})
_TOPOLOGY_ANNOTATION_TAILS = frozenset({"GridTopology"})

_EFFECT_LABEL = {
    READS_WALLCLOCK: "reads the wall clock",
    DRAWS_UNSEEDED_RNG: "draws from unseeded RNG state",
    MUTATES_MODULE_GLOBAL: "mutates a module global",
}


def _chain_text(effects: EffectAnalysis, node_id: str,
                effect: str) -> str:
    """``a -> b -> c (detail at path:line)`` for finding messages."""
    path, occurrence = effects.chain(node_id, effect)
    names = [p.rsplit(".", 1)[-1] + "()" for p in path]
    text = " -> ".join(names)
    if occurrence is not None:
        text += (f" [{occurrence.detail} at "
                 f"{occurrence.path}:{occurrence.line}]")
    return text


@register
class ShardPurityRule(Rule):
    """Workers dispatched through ``run_sharded`` must be shard-pure."""

    id = "shard-purity"
    family = "purity"
    description = ("callables dispatched through run_sharded must be "
                   "transitively free of wall-clock reads, unseeded "
                   "RNG draws, and module-global mutation, or serial "
                   "and sharded runs diverge (PR 3/PR 5 bug class)")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield impure workers at their dispatch sites."""
        graph = project.callgraph()
        effects = project.effects()
        for fnode in graph.function_nodes_of(module):
            for node in ast.walk(fnode.func):
                if not isinstance(node, ast.Call):
                    continue
                if tail_name(call_name(node, module)) \
                        not in SHARD_DISPATCHERS:
                    continue
                if not node.args:
                    continue
                worker_expr = node.args[0]
                targets = graph.resolve_callable_ref(worker_expr, fnode)
                for target in sorted(targets):
                    impure = sorted(effects.effects_of(target)
                                    & SHARD_IMPURE_EFFECTS)
                    for effect in impure:
                        worker = target.rsplit(".", 1)[-1]
                        yield module.finding(
                            self.id, node,
                            f"shard worker {worker}() {_EFFECT_LABEL[effect]} "
                            f"(transitively): "
                            f"{_chain_text(effects, target, effect)}; "
                            f"sharded and serial runs will diverge")


def _memo_decorated(func: FuncDef, module: ModuleInfo) -> Optional[str]:
    for decorator in func.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = tail_name(dotted_name(target, module))
        if name in MEMO_DECORATOR_NAMES:
            return name
    return None


@register
class StaleCacheRule(Rule):
    """Topology-keyed caches must register fault-listener invalidation."""

    id = "stale-cache"
    family = "cache-keys"
    description = ("a cache keyed on GridTopology fault state "
                   "(fault_epoch, failed_satellites, ...) must wire "
                   "topology.add_fault_listener(invalidate) through "
                   "itself, or chaos churn serves stale routes (the "
                   "pre-PR-8 DijkstraRouter bug)")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield topology-keyed caches with no invalidation path."""
        effects = project.effects()
        for class_node in ast.walk(module.tree):
            if isinstance(class_node, ast.ClassDef):
                yield from self._check_class(
                    module, project, class_node, effects)
        # Memoized module-level functions cannot register a listener
        # at all: a mutable topology in the key is always unsound.
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                decorator = _memo_decorated(node, module)
                if decorator is None:
                    continue
                for arg, tail in _topology_params(node):
                    yield module.finding(
                        self.id, arg,
                        f"@{decorator} function {node.name}() keys its "
                        f"cache on mutable topology parameter "
                        f"{arg.arg}{': ' + tail if tail else ''}; fault "
                        f"injection mutates it in place with no "
                        f"invalidation signal -- key on immutable "
                        f"state (e.g. (t, fault_epoch)) inside a "
                        f"listener-invalidated cache instead")

    def _check_class(self, module: ModuleInfo, project: ProjectContext,
                     class_node: ast.ClassDef,
                     effects: EffectAnalysis) -> Iterable[Finding]:
        method_ids = self._method_node_ids(module, project, class_node)
        store = None
        for node_id in method_ids:
            if REGISTERS_FAULT_LISTENER in effects.effects_of(node_id):
                return
            if store is None:
                for occurrence in effects.occurrences.get(node_id, []):
                    if occurrence.effect == BUILDS_TOPOLOGY_KEYED_CACHE \
                            and occurrence.detail.startswith("self."):
                        store = occurrence
                        break
        if store is None:
            return
        attr = store.detail.split(".", 1)[1]
        yield Finding(
            rule=self.id, path=module.relpath, line=store.line,
            message=(
                f"{class_node.name}.{attr} caches results keyed on "
                f"GridTopology fault state but no method reaches "
                f"add_fault_listener; chaos fault injection will serve "
                f"stale entries (the pre-PR-8 DijkstraRouter bug) -- "
                f"register topology.add_fault_listener(self.invalidate) "
                f"in __init__"))

    @staticmethod
    def _method_node_ids(module: ModuleInfo, project: ProjectContext,
                         class_node: ast.ClassDef) -> List[str]:
        graph = project.callgraph()
        ids: List[str] = []
        for item in class_node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                node_id = graph.node_for_def(item)
                if node_id is not None:
                    ids.append(node_id)
        return ids


def _topology_params(func: FuncDef) -> List[Tuple[ast.arg, str]]:
    out: List[Tuple[ast.arg, str]] = []
    for arg in (func.args.posonlyargs + func.args.args
                + func.args.kwonlyargs):
        tail = _annotation_tail_name(arg.annotation)
        if arg.arg.lower() in _TOPOLOGY_PARAM_NAMES \
                or tail in _TOPOLOGY_ANNOTATION_TAILS:
            out.append((arg, tail))
    return out


def _annotation_tail_name(node: Optional[ast.expr]) -> str:
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


@register
class UnorderedIterationRule(Rule):
    """Unsorted set iteration must not feed serialized artifacts."""

    id = "unordered-iteration"
    family = "ordering"
    severity = "warning"
    description = ("iterating a set (or module-global dict view) "
                   "without sorted(...) in a function that feeds a "
                   "JSON/golden/merge sink bakes PYTHONHASHSEED into "
                   "artifact bytes")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield unordered iterations on artifact-reaching paths."""
        graph = project.callgraph()
        effects = project.effects()
        for fnode in graph.function_nodes_of(module):
            occurrences = [
                o for o in effects.occurrences.get(fnode.node_id, [])
                if o.effect == ITERATES_UNORDERED]
            if not occurrences:
                continue
            if EMITS_ARTIFACT not in effects.effects_of(fnode.node_id):
                continue
            sink = _chain_text(effects, fnode.node_id, EMITS_ARTIFACT)
            for occurrence in occurrences:
                yield Finding(
                    rule=self.id, path=module.relpath,
                    line=occurrence.line,
                    message=(f"{fnode.name}() iterates unordered "
                             f"{occurrence.detail} and feeds a "
                             f"serialized artifact ({sink}); wrap the "
                             f"iterable in sorted(...) to pin the "
                             f"byte order"))


@register
class FloatReductionOrderRule(Rule):
    """Float reductions over unordered collections in merge paths."""

    id = "float-reduction-order"
    family = "ordering"
    severity = "warning"
    description = ("sum()/fsum()/loop accumulation over a set or dict "
                   "view in the obs/scenario/experiment merge layers "
                   "is order-dependent in floating point; sort the "
                   "iterable so shard count never changes totals")
    scope = ("obs/", "scenarios/", "experiments/")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield order-dependent reductions in scoped merge code."""
        graph = project.callgraph()
        for fnode in graph.function_nodes_of(module):
            tracker = _SetTracker(fnode, graph)
            for node in ast.walk(fnode.func):
                if isinstance(node, ast.Call):
                    reduced = self._reduced_source(node, module, tracker)
                    if reduced is not None:
                        yield module.finding(
                            self.id, node,
                            f"{fnode.name}() reduces over unordered "
                            f"{reduced}; float addition is not "
                            f"associative -- iterate "
                            f"sorted(...) so the total is "
                            f"shard-count-invariant")
                elif isinstance(node, ast.For) \
                        and tracker.is_set_valued(node.iter) \
                        and self._accumulates(node):
                    yield module.finding(
                        self.id, node.iter,
                        f"{fnode.name}() accumulates across a "
                        f"for-loop over a set-valued iterable; float "
                        f"addition is not associative -- iterate "
                        f"sorted(...) to pin the reduction order")

    @staticmethod
    def _reduced_source(call: ast.Call, module: ModuleInfo,
                        tracker: _SetTracker) -> Optional[str]:
        tail = tail_name(call_name(call, module))
        if tail not in ("sum", "fsum") or not call.args:
            return None
        arg = call.args[0]
        if tracker.is_set_valued(arg):
            return "set-valued iterable"
        if isinstance(arg, ast.Call) \
                and isinstance(arg.func, ast.Attribute) \
                and arg.func.attr in ("values", "items"):
            return f"dict .{arg.func.attr}() view"
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            source = arg.generators[0].iter
            if tracker.is_set_valued(source):
                return "set-valued iterable"
            if isinstance(source, ast.Call) \
                    and isinstance(source.func, ast.Attribute) \
                    and source.func.attr in ("values", "items"):
                return f"dict .{source.func.attr}() view"
        return None

    @staticmethod
    def _accumulates(loop: ast.For) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.AugAssign) \
                    and isinstance(node.op, (ast.Add, ast.Mult)):
                return True
        return False


@register
class ListenerLeakRule(Rule):
    """Listener registries must hold weak references (grid.py)."""

    id = "listener-leak"
    family = "lifecycle"
    severity = "warning"
    description = ("appending a callback into a *listener* registry "
                   "without weakref.WeakMethod/weakref.ref pins every "
                   "registrant (and its caches) alive for the "
                   "registry's lifetime; use grid.py's WeakMethod "
                   "pattern")

    #: Registry attribute vocabulary.
    _REGISTRY_WORDS = ("listener",)
    #: Weakref constructor tails that make a registration safe.
    _WEAK_TAILS = frozenset({"WeakMethod", "ref", "proxy", "WeakSet"})

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield strong registrations into listener collections."""
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            weak_locals = self._weak_locals(node, module)
            for call in ast.walk(node):
                if not (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in ("append", "add")
                        and len(call.args) == 1):
                    continue
                receiver = self._receiver_name(call.func.value)
                if receiver is None or not any(
                        word in receiver.lower()
                        for word in self._REGISTRY_WORDS):
                    continue
                if self._is_weak(call.args[0], module, weak_locals):
                    continue
                yield module.finding(
                    self.id, call,
                    f"{node.name}() appends a strong reference into "
                    f"{receiver!r}; a listener registry must hold "
                    f"weakref.WeakMethod (bound methods) or "
                    f"weakref.ref so registrants can die (grid.py "
                    f"pattern), and prune dead refs on notify")

    @staticmethod
    def _receiver_name(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _weak_locals(self, func: FuncDef,
                     module: ModuleInfo) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and self._is_weak_call(node.value, module):
                names.add(node.targets[0].id)
        return names

    def _is_weak(self, expr: ast.expr, module: ModuleInfo,
                 weak_locals: Set[str]) -> bool:
        if isinstance(expr, ast.Name) and expr.id in weak_locals:
            return True
        return self._is_weak_call(expr, module)

    def _is_weak_call(self, expr: ast.expr, module: ModuleInfo) -> bool:
        return (isinstance(expr, ast.Call)
                and tail_name(call_name(expr, module))
                in self._WEAK_TAILS)
