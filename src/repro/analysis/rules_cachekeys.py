"""Cache-key soundness: memoized functions must be memoizable.

PR 1 and PR 3 both hit the same cache-invalidation bug class: a
memoized function whose result silently depends on something *outside*
its cache key -- a mutable module global mutated between calls, or an
unhashable argument that forced callers to pre-convert (and sometimes
forgot).  Two rules pin the contract for anything decorated with
``shard_memoized`` / ``lru_cache`` / ``cache`` (the decorator set is
imported from :mod:`repro.runtime.memo`, the single source of truth):

* ``cache-key-unhashable`` -- parameters annotated as mutable
  containers (or with mutable defaults) cannot participate in a cache
  key; take a tuple/frozenset or a frozen dataclass instead;
* ``cache-mutable-global`` -- the function body must not read a
  module-level mutable container: its contents are invisible to the
  key, so a mutation turns the cache stale with no invalidation
  signal (and each worker process sees a *different* stale copy).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..runtime.memo import MEMO_DECORATOR_NAMES
from .core import (
    Finding,
    FuncDef,
    ModuleInfo,
    ProjectContext,
    Rule,
    annotation_source,
    args_with_defaults,
    bound_names,
    dotted_name,
    is_mutable_container,
    iter_functions,
    tail_name,
)
from .registry import register

#: Annotation roots that cannot be part of a hashable cache key.
UNHASHABLE_ANNOTATION_TAILS = frozenset({
    "list", "List", "dict", "Dict", "set", "Set", "defaultdict",
    "DefaultDict", "OrderedDict", "Counter", "deque", "bytearray",
    "ndarray", "MutableMapping", "MutableSequence", "MutableSet",
})


def _memo_decorator(func: FuncDef, module: ModuleInfo) -> Optional[str]:
    """The memoizing decorator's name, or None."""
    for decorator in func.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = dotted_name(target, module)
        if tail_name(name) in MEMO_DECORATOR_NAMES:
            return tail_name(name)
    return None


def _annotation_tail(node: Optional[ast.expr],
                     module: ModuleInfo) -> str:
    if node is None:
        return ""
    base = node.value if isinstance(node, ast.Subscript) else node
    return tail_name(dotted_name(base, module))


@register
class CacheKeyUnhashableRule(Rule):
    """Flag memoized functions taking unhashable parameters."""

    id = "cache-key-unhashable"
    family = "cache-keys"
    description = ("shard_memoized/lru_cache functions must take only "
                   "hashable parameters (tuples, frozen dataclasses); "
                   "mutable-container params cannot key a cache")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield unhashable params/defaults on memoized functions."""
        for func, _ in iter_functions(module.tree):
            decorator = _memo_decorator(func, module)
            if decorator is None:
                continue
            for arg, default in args_with_defaults(func):
                annotation_tail = _annotation_tail(
                    arg.annotation, module)
                if annotation_tail in UNHASHABLE_ANNOTATION_TAILS:
                    yield module.finding(
                        self.id, arg,
                        f"@{decorator} function {func.name}() takes "
                        f"unhashable parameter {arg.arg}: "
                        f"{annotation_source(arg.annotation)}; pass a "
                        f"tuple/frozenset or a frozen dataclass")
                elif (default is not None
                      and is_mutable_container(default, module)):
                    yield module.finding(
                        self.id, arg,
                        f"@{decorator} function {func.name}() has a "
                        f"mutable default for {arg.arg}; mutable "
                        f"defaults are shared across calls and cannot "
                        f"key a cache")


@register
class CacheMutableGlobalRule(Rule):
    """Flag memoized functions reading mutable module globals."""

    id = "cache-mutable-global"
    family = "cache-keys"
    description = ("memoized functions must not close over mutable "
                   "module globals: their contents are outside the "
                   "cache key, so mutation makes cached results "
                   "silently stale (the PR 1/PR 3 bug class)")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield mutable-global reads inside memoized functions."""
        if not module.mutable_globals:
            return
        for func, _ in iter_functions(module.tree):
            decorator = _memo_decorator(func, module)
            if decorator is None:
                continue
            local_names = bound_names(func)
            reported: Set[str] = set()
            for node in ast.walk(func):
                if not (isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)):
                    continue
                name = node.id
                if (name in module.mutable_globals
                        and name not in local_names
                        and name not in reported):
                    reported.add(name)
                    yield module.finding(
                        self.id, node,
                        f"@{decorator} function {func.name}() reads "
                        f"mutable module global {name!r}; its value "
                        f"is outside the cache key -- pass it as a "
                        f"(hashable) parameter instead")
