"""Shared infrastructure for the invariant-enforcing analyzer.

The analyzer exists because two architectural contracts of this
reproduction are invisible to the test suite until they are violated:

* **statelessness** -- SpaceCore-path network functions must not grow
  per-UE durable state (the paper's Fig. 9 contract; the whole point
  of UE-carried state replicas);
* **determinism** -- the sharded parallel runtime (PR 3) is only
  bit-reproducible if every random draw is seeded, every derived seed
  avoids the salted builtin ``hash()``, and simulated code never reads
  the wall clock.

Both were previously enforced by reviewer vigilance; every PR so far
hand-fixed the same bug classes.  This package checks them
mechanically: each :class:`Rule` walks a parsed module
(:class:`ModuleInfo`) with project-wide facts available through a
:class:`ProjectContext` (e.g. which classes are frozen snapshot
types), and emits :class:`Finding` records.

Suppression is inline and self-documenting::

    self._served: Dict[str, ServedSession] = {}  # repro: ignore[stateful-nf] -- ephemeral radio-session state (Fig. 19)

A bare ``# repro: ignore`` suppresses every rule on that line; the
bracketed form suppresses only the named rules and is preferred
because it survives rule additions.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .callgraph import CallGraph
    from .effects import EffectAnalysis

#: A function definition node, sync or async.
FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: ``# repro: ignore[rule-a, rule-b]`` -- suppress the named rules.
_SUPPRESS_RULES_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_\-, ]+)\]")
#: ``# repro: ignore`` (no bracket) -- suppress every rule on the line.
_SUPPRESS_ALL_RE = re.compile(r"#\s*repro:\s*ignore(?!\[)")

#: Call targets that build a mutable container from scratch.
MUTABLE_CONSTRUCTOR_TAILS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "deque",
    "Counter", "bytearray",
})


@dataclass
class Finding:
    """One rule violation at one source location.

    ``fingerprint`` is content-addressed (rule, relative path,
    message, and an occurrence ordinal) so baselines survive unrelated
    line drift; it is filled in by the runner after all rules have
    reported.
    """

    rule: str
    path: str
    line: int
    message: str
    fingerprint: str = ""
    baselined: bool = False
    #: Filled by the runner from the producing rule; not part of the
    #: fingerprint, so re-tagging a rule never churns baselines.
    severity: str = "error"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (the ``findings[]`` schema entry)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
            "severity": self.severity,
        }

    def sort_key(self) -> Tuple[str, int, str, str]:
        """Stable report order: path, then line, then rule."""
        return (self.path, self.line, self.rule, self.message)


class ModuleInfo:
    """One parsed source file plus the lookups every rule needs."""

    def __init__(self, path: Path, relpath: str, source: str,
                 tree: ast.Module):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree
        #: local name -> imported module path (``np`` -> ``numpy``).
        self.import_aliases: Dict[str, str] = {}
        #: local name -> dotted origin for from-imports
        #: (``npr`` -> ``numpy.random``, ``poisson`` -> ``numpy.random.poisson``).
        self.imported_names: Dict[str, str] = {}
        #: module-level names bound to mutable containers.
        self.mutable_globals: Set[str] = set()
        #: line number -> suppressed rule ids (``*`` = all rules).
        self.suppressions: Dict[int, Set[str]] = {}
        self._index_imports()
        self._index_mutable_globals()
        self._index_suppressions()

    # -- indexing ----------------------------------------------------------

    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.import_aliases[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        self.import_aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    origin = f"{base}.{alias.name}" if base else alias.name
                    self.imported_names[local] = origin

    def _index_mutable_globals(self) -> None:
        for node in self.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not is_mutable_container(value, self):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.mutable_globals.add(target.id)

    def _index_suppressions(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            if "repro:" not in text:
                continue
            match = _SUPPRESS_RULES_RE.search(text)
            if match:
                rules = {r.strip() for r in match.group(1).split(",")}
                self.suppressions.setdefault(lineno, set()).update(
                    r for r in rules if r)
            elif _SUPPRESS_ALL_RE.search(text):
                self.suppressions.setdefault(lineno, set()).add("*")

    # -- queries -----------------------------------------------------------

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Whether a ``# repro: ignore`` comment covers this finding."""
        rules = self.suppressions.get(line)
        return bool(rules) and ("*" in rules or rule_id in rules)

    def source_line(self, line: int) -> str:
        """The 1-indexed source line, or empty when out of range."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def finding(self, rule_id: str, node: ast.AST,
                message: str) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        return Finding(rule=rule_id, path=self.relpath,
                       line=getattr(node, "lineno", 0), message=message)


class ProjectContext:
    """Facts collected over the whole analyzed file set (pass 1).

    The interprocedural layer (ISSUE 9) hangs off this object too:
    :meth:`callgraph` and :meth:`effects` build the whole-program call
    graph and its effect summaries lazily, once per analyzer run, and
    every interprocedural rule shares the same instance.
    """

    #: Immutable-by-contract classes that are not frozen dataclasses
    #: (arrays marked read-only, documented snapshot semantics).
    EXTRA_FROZEN_CLASSES = frozenset({"ConstellationSnapshot"})

    def __init__(self, root: Path, modules: Sequence[ModuleInfo]):
        self.root = root
        self.modules: List[ModuleInfo] = list(modules)
        self.frozen_classes: Set[str] = set(self.EXTRA_FROZEN_CLASSES)
        self._callgraph: Optional["CallGraph"] = None
        self._effects: Optional["EffectAnalysis"] = None
        for module in self.modules:
            for node in ast.walk(module.tree):
                if (isinstance(node, ast.ClassDef)
                        and is_frozen_dataclass(node)):
                    self.frozen_classes.add(node.name)

    def callgraph(self) -> "CallGraph":
        """The project call graph, built on first use (cached)."""
        if self._callgraph is None:
            from .callgraph import build_callgraph
            self._callgraph = build_callgraph(self.modules)
        return self._callgraph

    def effects(self) -> "EffectAnalysis":
        """Whole-program effect summaries, built on first use."""
        if self._effects is None:
            from .effects import analyze_effects
            self._effects = analyze_effects(self.callgraph())
        return self._effects


class Rule:
    """One invariant check.  Subclasses set the class attributes and
    implement :meth:`check`; registration happens via
    :func:`repro.analysis.registry.register`."""

    id: str = ""
    family: str = ""
    description: str = ""
    #: ``error`` findings are contract violations; ``warning`` marks
    #: advisory hygiene rules.  Both fail the gate when new -- the tag
    #: feeds triage in the JSON report, not the exit code.
    severity: str = "error"
    #: Whether ``# repro: ignore[...]`` can silence this rule.  The
    #: suppression-hygiene rule itself is exempt, or a bare ignore
    #: would hide its own finding.
    suppressible: bool = True
    #: Path scope: ``"dir/"`` entries match a directory component,
    #: other entries match a path suffix.  Empty means every file.
    scope: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule runs on the given (relative) path."""
        return path_in_scope(relpath, self.scope)

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield every violation of this rule in one module."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# AST helpers shared by the rule modules
# ---------------------------------------------------------------------------

def path_in_scope(relpath: str, patterns: Sequence[str]) -> bool:
    """Whether a (posix) relative path falls inside a rule's scope.

    Patterns ending in ``/`` match any path containing that directory
    component (``"sim/"`` matches ``src/repro/sim/engine.py``); other
    patterns match the path itself or a suffix at a path boundary
    (``"core/spacecore.py"``).
    """
    if not patterns:
        return True
    haystack = "/" + relpath
    for pattern in patterns:
        if pattern.endswith("/"):
            if ("/" + pattern) in haystack + "/":
                return True
        elif relpath == pattern or haystack.endswith("/" + pattern):
            return True
    return False


def dotted_name(node: ast.AST, module: ModuleInfo) -> Optional[str]:
    """Resolve a Name/Attribute chain through the module's imports.

    ``np.random.poisson`` -> ``numpy.random.poisson`` under
    ``import numpy as np``; ``datetime.now`` -> ``datetime.datetime.now``
    under ``from datetime import datetime``.  Returns None for
    non-name expressions (calls, subscripts, ...).
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = module.imported_names.get(
        current.id, module.import_aliases.get(current.id, current.id))
    parts.append(base.lstrip("."))
    return ".".join(reversed(parts))


def call_name(call: ast.Call, module: ModuleInfo) -> Optional[str]:
    """The resolved dotted name of a call's target, or None."""
    return dotted_name(call.func, module)


def tail_name(name: Optional[str]) -> str:
    """Last component of a dotted name (``numpy.random.poisson`` ->
    ``poisson``); empty string for None."""
    return name.rsplit(".", 1)[-1] if name else ""


def is_mutable_container(node: ast.expr, module: ModuleInfo) -> bool:
    """Whether an expression builds a fresh mutable container."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        return tail_name(call_name(node, module)) in MUTABLE_CONSTRUCTOR_TAILS
    return False


def is_frozen_dataclass(node: ast.ClassDef) -> bool:
    """Whether a class is decorated ``@dataclass(frozen=True)``."""
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True):
                return True
    return False


def annotation_allows_none(node: Optional[ast.expr]) -> bool:
    """Whether a parameter annotation already admits ``None``.

    Recognises ``Optional[T]``, ``Union[..., None]``, ``T | None``,
    ``Any``, ``None``, ``object``, and string annotations mentioning
    any of those.
    """
    if node is None:
        return False
    if isinstance(node, ast.Constant):
        if node.value is None:
            return True
        if isinstance(node.value, str):
            text = node.value
            return ("Optional" in text or "None" in text
                    or text in ("Any", "object"))
        return False
    if isinstance(node, ast.Name):
        return node.id in ("Any", "object", "None")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Any", "object")
    if isinstance(node, ast.Subscript):
        base = node.value
        base_tail = (base.id if isinstance(base, ast.Name)
                     else base.attr if isinstance(base, ast.Attribute)
                     else "")
        if base_tail == "Optional":
            return True
        if base_tail == "Union":
            inner = node.slice
            elements = (inner.elts if isinstance(inner, ast.Tuple)
                        else [inner])
            return any(annotation_allows_none(e) for e in elements)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return (annotation_allows_none(node.left)
                or annotation_allows_none(node.right))
    return False


def annotation_source(node: Optional[ast.expr]) -> str:
    """Best-effort source text of an annotation, for messages."""
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all exprs
        return "<annotation>"


def iter_functions(tree: ast.Module) -> Iterable[
        Tuple[FuncDef, Optional[ast.ClassDef]]]:
    """Every (async) function definition with its enclosing class.

    Only the *immediately* enclosing class matters for the rules here
    (frozen-mutation exempts a class's own methods), so nested
    functions inherit their method's class.
    """

    def visit(node: ast.AST, enclosing: Optional[ast.ClassDef]
              ) -> Iterable[Tuple[FuncDef, Optional[ast.ClassDef]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, enclosing
                yield from visit(child, enclosing)
            else:
                yield from visit(child, enclosing)

    yield from visit(tree, None)


def all_args(func: FuncDef) -> List[ast.arg]:
    """Positional-only + positional + keyword-only args, in order."""
    args = func.args
    return list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)


def bound_names(func: FuncDef) -> Set[str]:
    """Names bound locally in a function: parameters, assignment
    targets, and nested def names.  A module-global read inside the
    function is only a *global* read when its name is not in here."""
    bound: Set[str] = {a.arg for a in all_args(func)}
    if func.args.vararg:
        bound.add(func.args.vararg.arg)
    if func.args.kwarg:
        bound.add(func.args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func:
            bound.add(node.name)
    return bound


def args_with_defaults(func: FuncDef
                       ) -> List[Tuple[ast.arg, Optional[ast.expr]]]:
    """Each argument paired with its default expression (or None)."""
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    pairs: List[Tuple[ast.arg, Optional[ast.expr]]] = []
    no_default = len(positional) - len(args.defaults)
    for index, arg in enumerate(positional):
        default = (args.defaults[index - no_default]
                   if index >= no_default else None)
        pairs.append((arg, default))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        pairs.append((arg, default))
    return pairs
