"""Text and JSON reporters for lint results.

The JSON schema (``--format json``) is stable and versioned; CI
uploads it as an artifact so a failing gate can be diagnosed without
re-running the analyzer::

    {
      "version": 2,
      "root": "<analysis root>",
      "files_checked": 103,
      "rules": ["cache-key-unhashable", ...],
      "findings": [
        {"rule": "...", "path": "...", "line": 1, "message": "...",
         "fingerprint": "...", "baselined": false,
         "severity": "error"},
        ...
      ],
      "stale_baseline": [<baseline entries that matched nothing>],
      "summary": {"total": 0, "new": 0, "baselined": 0,
                  "suppressed": 0, "stale_baseline": 0}
    }

Exit-code contract (tested in ``tests/test_analysis_cli.py``): 0 when
no *new* findings, 1 otherwise.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .core import Finding

#: v2 added per-finding ``severity`` (error | warning).
JSON_SCHEMA_VERSION = 2


def build_report(root: str, files_checked: int,
                 rule_ids: Sequence[str],
                 new: Sequence[Finding],
                 baselined: Sequence[Finding],
                 suppressed: int,
                 stale: Sequence[Dict[str, object]]
                 ) -> Dict[str, object]:
    """The canonical result document both reporters render."""
    findings = sorted(list(new) + list(baselined), key=Finding.sort_key)
    return {
        "version": JSON_SCHEMA_VERSION,
        "root": root,
        "files_checked": files_checked,
        "rules": list(rule_ids),
        "findings": [f.to_dict() for f in findings],
        "stale_baseline": list(stale),
        "summary": {
            "total": len(findings),
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": suppressed,
            "stale_baseline": len(stale),
        },
    }


def render_json(report: Dict[str, object]) -> str:
    """Render the report document as stable, sorted JSON."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_text(report: Dict[str, object]) -> str:
    """Human-readable rendering: one ``path:line: [rule] message``
    per finding, then a summary line."""
    lines: List[str] = []
    findings = report["findings"]
    assert isinstance(findings, list)
    for entry in findings:
        tag = " (baselined)" if entry["baselined"] else ""
        lines.append(f"{entry['path']}:{entry['line']}: "
                     f"[{entry['rule']}]{tag} {entry['message']}")
    stale = report["stale_baseline"]
    assert isinstance(stale, list)
    for entry in stale:
        lines.append(f"stale baseline entry: {entry['path']}:"
                     f"{entry['line']} [{entry['rule']}] -- fixed? "
                     f"run --write-baseline to expire it")
    summary = report["summary"]
    assert isinstance(summary, dict)
    lines.append(
        f"{report['files_checked']} files checked: "
        f"{summary['new']} new finding(s), "
        f"{summary['baselined']} baselined, "
        f"{summary['suppressed']} suppressed inline, "
        f"{summary['stale_baseline']} stale baseline entr(ies)")
    return "\n".join(lines) + "\n"
