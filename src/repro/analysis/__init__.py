"""Invariant-enforcing static analysis for the reproduction.

``repro lint`` (and the tier-1 self-test) run AST rules that encode
the two architectural contracts tests cannot see until they break:

* the paper's **statelessness** contract -- SpaceCore-path NFs hold no
  per-UE durable state (Fig. 9);
* the runtime's **determinism** contract -- seeded randomness only,
  no salted ``hash()`` in seed/key derivation, no wall-clock reads in
  simulated code, sound cache keys, no mutation of frozen snapshots.

See DESIGN.md "Static analysis & invariants" for the rule catalogue,
suppression syntax, and how to add a rule.
"""

from .baseline import BASELINE_FILENAME, Baseline
from .core import Finding, ModuleInfo, ProjectContext, Rule
from .registry import all_rules, get_rules, register
from .reporting import JSON_SCHEMA_VERSION, build_report
from .runner import AnalysisResult, analyze, default_target, lint_main

__all__ = [
    "AnalysisResult",
    "BASELINE_FILENAME",
    "Baseline",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "ModuleInfo",
    "ProjectContext",
    "Rule",
    "all_rules",
    "analyze",
    "build_report",
    "default_target",
    "get_rules",
    "lint_main",
    "register",
]
