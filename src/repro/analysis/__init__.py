"""Invariant-enforcing static analysis for the reproduction.

``repro lint`` (and the tier-1 self-test) run AST rules that encode
the two architectural contracts tests cannot see until they break:

* the paper's **statelessness** contract -- SpaceCore-path NFs hold no
  per-UE durable state (Fig. 9);
* the runtime's **determinism** contract -- seeded randomness only,
  no salted ``hash()`` in seed/key derivation, no wall-clock reads in
  simulated code, sound cache keys, no mutation of frozen snapshots.

Since ISSUE 9 the analyzer is whole-program: :mod:`.callgraph`
resolves intra-project calls and :mod:`.effects` runs a fixed-point
effect inference over them, so the interprocedural rules
(:mod:`.rules_interprocedural`) can ask transitive questions --
"does this ``run_sharded`` worker ever read the wall clock?", "does
this topology-keyed cache ever reach ``add_fault_listener``?" --
that file-local rules cannot.

See DESIGN.md "Static analysis & invariants" for the rule catalogue,
suppression syntax, and how to add a rule.
"""

from .baseline import BASELINE_FILENAME, Baseline
from .callgraph import CallGraph, FunctionNode, build_callgraph
from .core import Finding, ModuleInfo, ProjectContext, Rule
from .effects import (
    ALL_EFFECTS,
    SHARD_IMPURE_EFFECTS,
    EffectAnalysis,
    EffectOccurrence,
    analyze_effects,
)
from .registry import all_rules, get_rules, register
from .reporting import JSON_SCHEMA_VERSION, build_report
from .runner import (
    GRAPH_SCHEMA_VERSION,
    AnalysisResult,
    analyze,
    default_target,
    lint_main,
    render_graph,
)

__all__ = [
    "ALL_EFFECTS",
    "AnalysisResult",
    "BASELINE_FILENAME",
    "Baseline",
    "CallGraph",
    "EffectAnalysis",
    "EffectOccurrence",
    "Finding",
    "FunctionNode",
    "GRAPH_SCHEMA_VERSION",
    "JSON_SCHEMA_VERSION",
    "ModuleInfo",
    "ProjectContext",
    "Rule",
    "SHARD_IMPURE_EFFECTS",
    "all_rules",
    "analyze",
    "analyze_effects",
    "build_callgraph",
    "build_report",
    "default_target",
    "get_rules",
    "lint_main",
    "register",
    "render_graph",
]
