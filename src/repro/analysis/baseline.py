"""Committed findings baseline: ratchet, don't regress.

A baseline lets the lint gate land before the last finding is fixed:
known findings are recorded (fingerprinted by rule + path + source
line content, so unrelated line drift does not churn them) and only
*new* findings fail the build.  Entries carry an optional ``note``
justifying why the finding is accepted; the acceptance bar for this
repo is an **empty** baseline -- real exceptions are suppressed inline
next to the code they excuse, where reviewers see them.

Expiry is automatic on rewrite: ``repro lint --write-baseline`` drops
entries whose finding no longer exists (and the normal run reports
them as stale so a shrinking baseline is visible in CI logs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .core import Finding

#: Default baseline file name, resolved against the analysis root.
BASELINE_FILENAME = "lint-baseline.json"

_VERSION = 1


class Baseline:
    """The set of accepted findings, keyed by fingerprint."""

    def __init__(self, entries: Optional[Dict[str, Dict[str, object]]]
                 = None, path: Optional[Path] = None):
        self.entries: Dict[str, Dict[str, object]] = dict(entries or {})
        self.path = path

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls(path=path)
        data = json.loads(path.read_text())
        if data.get("version") != _VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version "
                f"{data.get('version')!r} (expected {_VERSION})")
        entries: Dict[str, Dict[str, object]] = {}
        for entry in data.get("findings", []):
            entries[str(entry["fingerprint"])] = dict(entry)
        return cls(entries, path=path)

    def partition(self, findings: Sequence[Finding]
                  ) -> Tuple[List[Finding], List[Finding],
                             List[Dict[str, object]]]:
        """Split findings into (new, baselined); also return stale
        baseline entries that matched nothing this run."""
        new: List[Finding] = []
        baselined: List[Finding] = []
        matched: set = set()
        for finding in findings:
            if finding.fingerprint in self.entries:
                finding.baselined = True
                matched.add(finding.fingerprint)
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [entry for fingerprint, entry in sorted(
            self.entries.items()) if fingerprint not in matched]
        return new, baselined, stale

    def write(self, findings: Sequence[Finding],
              path: Optional[Path] = None) -> Path:
        """Rewrite the baseline to exactly the given findings.

        Notes on surviving entries are preserved; entries whose
        finding disappeared expire (they are simply not rewritten).
        """
        target = path or self.path
        if target is None:
            raise ValueError("no baseline path to write to")
        payload: List[Dict[str, object]] = []
        for finding in sorted(findings, key=Finding.sort_key):
            entry: Dict[str, object] = {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "fingerprint": finding.fingerprint,
            }
            old = self.entries.get(finding.fingerprint)
            if old is not None and old.get("note"):
                entry["note"] = old["note"]
            payload.append(entry)
        target.write_text(json.dumps(
            {"version": _VERSION, "findings": payload}, indent=2,
            sort_keys=True) + "\n")
        return target
