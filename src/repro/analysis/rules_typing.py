"""Typing rule: no implicit-Optional parameters.

``def f(count: int = None)`` lies to every reader and to mypy (which
rejects it under ``no_implicit_optional``, the modern default).  This
was the recurring bug class of PRs 1-3 -- each one hand-fixed a few --
so the analyzer now flags every annotated parameter whose default is
``None`` but whose annotation does not admit it.  The fix is mechanical:
``Optional[T]`` (or ``T | None`` once the floor is 3.10).
"""

from __future__ import annotations

import ast
from typing import Iterable

from .core import (
    Finding,
    ModuleInfo,
    ProjectContext,
    Rule,
    annotation_allows_none,
    annotation_source,
    args_with_defaults,
    iter_functions,
)
from .registry import register


@register
class ImplicitOptionalRule(Rule):
    """Flag ``param: T = None`` where T does not admit None."""

    id = "implicit-optional"
    family = "typing"
    description = ("parameters defaulting to None must be annotated "
                   "Optional[T] (the recurring PR 1-3 bug class)")

    def check(self, module: ModuleInfo,
              project: ProjectContext) -> Iterable[Finding]:
        """Yield every None-defaulted param whose hint forbids None."""
        for func, _ in iter_functions(module.tree):
            for arg, default in args_with_defaults(func):
                if arg.annotation is None or default is None:
                    continue
                if not (isinstance(default, ast.Constant)
                        and default.value is None):
                    continue
                if annotation_allows_none(arg.annotation):
                    continue
                yield module.finding(
                    self.id, arg,
                    f"{func.name}() parameter {arg.arg}: "
                    f"{annotation_source(arg.annotation)} defaults to "
                    f"None; annotate as Optional["
                    f"{annotation_source(arg.annotation)}]")
