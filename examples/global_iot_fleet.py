#!/usr/bin/env python3
"""Global IoT fleet: the ubiquitous-connectivity value proposition.

S2.2(2): LEO satellites promise massive connectivity to delay-tolerant
low-energy IoT devices.  This example provisions a fleet of static
sensors across five continents, registers them once, and then shows
what the stateless core buys them over a day of satellite passes:

* every sensor keeps one geospatial address forever (no TCP resets);
* idle sensors cost ZERO mobility signaling as hundreds of satellites
  sweep overhead;
* waking up to report a reading is a 4-message local exchange with
  whatever satellite happens to be above.

For contrast, the same fleet's per-day signaling under Baoyun-style
logical areas is computed from the same event rates.

Run:  python examples/global_iot_fleet.py
"""

from repro.baselines import baoyun, spacecore
from repro.core import SpaceCoreSystem
from repro.fiveg.messages import ProcedureKind
from repro.orbits import mean_dwell_time_s, starlink

SENSOR_SITES = [
    ("nairobi-farm", -1.29, 36.82),
    ("amazon-gauge", -3.10, -60.02),
    ("texas-pipeline", 31.00, -100.00),
    ("bavaria-grid", 48.14, 11.58),
    ("mekong-buoy", 10.78, 106.70),
    ("outback-weather", -23.70, 133.88),
    ("punjab-irrigation", 30.90, 75.85),
    ("yangtze-sensor", 30.59, 114.31),
]

REPORTS_PER_DAY = 24  # one reading an hour


def main() -> None:
    system = SpaceCoreSystem(starlink())
    dwell = mean_dwell_time_s(system.constellation)
    passes_per_day = 86400.0 / dwell

    print("== Global IoT fleet over SpaceCore ==")
    print(f"{len(SENSOR_SITES)} sensors, {passes_per_day:.0f} satellite "
          f"passes/day each (dwell {dwell:.0f} s)\n")

    sensors = []
    for name, lat, lon in SENSOR_SITES:
        ue = system.provision_ue(lat, lon)
        system.register(ue)
        sensors.append((name, ue))
        print(f"  {name:18s} cell {system.cell_of(ue)!s:10s} "
              f"addr {ue.ip_address}")

    # Wake each sensor once: a local 4-message session establishment.
    print("\nHourly wake-up on whichever satellite is overhead:")
    for name, ue in sensors:
        served = system.establish_session(ue, t=0.0)
        sat = system.serving_satellite_of(ue, 0.0)
        print(f"  {name:18s} satellite {sat:4d} installed session, "
              f"key {served.session_key.hex()[:8]}..., "
              f"uplink: {system.send_uplink(ue, 256)}")
        system.release(ue)  # back to sleep; satellite state evaporates

    # Per-day signaling arithmetic: SpaceCore vs a logical-area core.
    sc, by = spacecore(), baoyun()
    sc_flow = len(sc.flow(ProcedureKind.SESSION_ESTABLISHMENT))
    by_flow = len(by.flow(ProcedureKind.SESSION_ESTABLISHMENT))
    by_mobility = len(by.flow(ProcedureKind.MOBILITY_REGISTRATION))

    sc_per_day = REPORTS_PER_DAY * sc_flow
    by_per_day = (REPORTS_PER_DAY * by_flow
                  + passes_per_day * by_mobility)
    print(f"\nSignaling messages per sensor per day:")
    print(f"  SpaceCore (geospatial areas): {sc_per_day:7.0f}  "
          f"({REPORTS_PER_DAY} wakeups x {sc_flow} msgs, 0 mobility)")
    print(f"  Baoyun    (logical areas)   : {by_per_day:7.0f}  "
          f"({REPORTS_PER_DAY} wakeups x {by_flow} msgs + "
          f"{passes_per_day:.0f} passes x {by_mobility} msgs)")
    print(f"  -> {by_per_day / sc_per_day:.1f}x reduction for an "
          "idle-dominated IoT fleet")

    # Battery angle: radio-on time is what drains IoT sensors.
    print("\nWhy this matters for battery life: every eliminated")
    print("mobility registration is a radio wake-up the sensor skips;")
    print(f"at {passes_per_day:.0f} passes/day the legacy design wakes "
          "the radio every ~2.8 minutes for a device that reports "
          "hourly.")


if __name__ == "__main__":
    main()
