#!/usr/bin/env python3
"""Quickstart: a UE's full life in SpaceCore over Starlink.

Walks through the paper's Fig. 14/16 story end to end:

1. provision a subscriber and register through the terrestrial home
   (C1), receiving the encrypted state replica;
2. establish a data session *locally* on the serving satellite
   (Fig. 16a + Algorithm 2) -- no home round trip;
3. send uplink traffic and receive downlink traffic relayed
   statelessly across the constellation (Algorithm 1);
4. ride an inter-satellite handover with the piggybacked replica
   (Fig. 16c);
5. watch the home revoke a hijacked satellite (Appendix B).

Run:  python examples/quickstart.py
"""

from repro.core import FallbackRequired, SpaceCoreSystem
from repro.orbits import starlink


def main() -> None:
    print("== SpaceCore quickstart ==")
    system = SpaceCoreSystem(starlink())
    print(f"constellation: {system.constellation.name} with "
          f"{system.constellation.total_satellites} satellites, "
          f"{len(system.ground_stations)} gateways")

    # 1. Provision + register (C1 through the terrestrial home).
    beijing_ue = system.provision_ue(39.9, 116.4)
    session = system.register(beijing_ue)
    print(f"\n[C1] registered {beijing_ue.supi}")
    print(f"     geospatial IP: {beijing_ue.ip_address}")
    print(f"     cell: {system.cell_of(beijing_ue)}")
    print(f"     state replica: {beijing_ue.replica.size_bytes()} bytes, "
          f"version {beijing_ue.replica.version}")

    # 2. Localized session establishment on the serving satellite.
    served = system.establish_session(beijing_ue, t=0.0)
    sat_index = system.serving_satellite_of(beijing_ue, 0.0)
    print(f"\n[C2] localized establishment on satellite {sat_index}")
    print(f"     fresh session key: {served.session_key.hex()[:16]}...")
    served_count = system.satellite(sat_index).served_count
    print(f"     satellite now serves {served_count} session(s), "
          "statelessly")

    # 3. Uplink + stateless downlink relay to a remote UE.
    ok = system.send_uplink(beijing_ue, 1500)
    print(f"\n[data] uplink 1500B forwarded: {ok}")
    ny_ue = system.provision_ue(40.7, -74.0)
    system.register(ny_ue)
    result = system.deliver_downlink(sat_index, ny_ue, t=0.0)
    print(f"[data] downlink Beijing->New York: delivered="
          f"{result.route.delivered}, {result.route.hops} ISL hops, "
          f"{result.route.delay_s * 1000:.1f} ms, paged={result.paged}")

    # 4. Handover when the satellite moves on (~165 s dwell).
    new_sat = system.handover(beijing_ue, t=200.0)
    print(f"\n[C3] satellite pass: handover {sat_index} -> {new_sat} "
          "(replica piggybacked, no home involvement)")
    print(f"     uplink still works: {system.send_uplink(beijing_ue, 500, 200.0)}")
    print("     mobility registrations triggered: 0 "
          "(geospatial cells never move)")

    # 5. Hijack response: revoke a satellite; it can no longer decrypt.
    victim = new_sat
    system.home.revoke_satellite(f"sat-{victim}")
    print(f"\n[security] home revoked hijacked sat-{victim} "
          f"(ABE epoch now {system.home.epoch})")
    probe = system.provision_ue(39.0, 116.0)
    system.register(probe)
    try:
        system.satellite(victim).establish_session_locally(
            probe, 200.0, system.home.verify_key)
        print("     ERROR: revoked satellite opened new states!")
    except FallbackRequired as exc:
        print(f"     revoked satellite rejected: {exc}")
    print("\nDone.")


if __name__ == "__main__":
    main()
