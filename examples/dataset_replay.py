#!/usr/bin/env python3
"""Dataset replay: Trace 1 and the Table 2 workload on satellite CPUs.

Reconstructs the paper's measurement methodology (S3, S6): replay the
operational signaling datasets against the satellite hardware model.

1. print a Trace 1-style session-establishment timeline for the
   Inmarsat Explorer 710 and contrast it with SpaceCore's localized
   establishment;
2. replay a slice of the Tiantong SC310 dataset (Table 2 mix) through
   the Raspberry Pi 4 cost model and chart the CPU series.

Run:  python examples/dataset_replay.py
"""

from repro.baselines import spacecore
from repro.experiments import solution_latency_s
from repro.fiveg.messages import ProcedureKind
from repro.workload import (
    replay_cpu_series,
    timeline_duration_s,
    trace1_timeline,
)


def main() -> None:
    print("== Dataset replay ==")

    # 1. Trace 1: what a GEO terminal goes through for one session.
    timeline = trace1_timeline("inmarsat-explorer-710", seed=7)
    print("\nTrace 1 -- session establishment, Inmarsat Explorer 710:")
    for event in timeline:
        print(f"  +{event.t_s:7.3f}s  {event.layer:5s} {event.text}")
    duration = timeline_duration_s(timeline)
    spacecore_latency, _ = solution_latency_s(
        spacecore(), ProcedureKind.SESSION_ESTABLISHMENT, 100)
    print(f"\n  total: {duration:.1f} s through the remote gateway")
    print(f"  SpaceCore's localized establishment: "
          f"{spacecore_latency * 1000:.1f} ms "
          f"({duration / spacecore_latency:,.0f}x faster)")

    # 2. Table 2 replay on satellite hardware.
    print("\nTiantong SC310 replay on hardware 1 (RPi 4), "
          "20k messages / 10 min:")
    series = replay_cpu_series("tiantong-sc310", 20_000,
                               duration_s=600.0, window_s=60.0)
    for sample in series:
        bar = "#" * int(sample.cpu_percent)
        print(f"  t={sample.window_start_s:5.0f}s "
              f"{sample.messages:5d} msgs "
              f"cpu={sample.cpu_percent:5.1f}% {bar}")
    mean_cpu = sum(s.cpu_percent for s in series) / len(series)
    print(f"\n  mean CPU {mean_cpu:.1f}% -- one terminal's chatter is "
          "cheap; the storm comes from thousands of UEs per satellite "
          "(see `python -m repro fig10`).")


if __name__ == "__main__":
    main()
