#!/usr/bin/env python3
"""Home-controlled state updates: the 15 GB / 128 Kbps story (S4.4).

A stateless core must not mean the operator loses control.  This
example runs the paper's running policy example end to end:

1. a subscriber with a 15 GB quota registers and gets its signed,
   encrypted state replica;
2. it binge-downloads through a serving satellite, whose local UPF
   *enforces* the current QoS with a token bucket;
3. the satellite reports usage to the home; the home's PCF notices the
   burnt quota, throttles the QoS to 128 Kbps, re-signs, re-encrypts,
   bumps the version, and pushes the new replica to the UE;
4. the next session establishment installs the throttled state -- and
   the satellite's shaper now admits two orders of magnitude less.

Run:  python examples/home_controlled_billing.py
"""

import dataclasses

from repro.core import SpaceCoreSatellite, SpaceCoreHome
from repro.crypto import decrypt
from repro.fiveg import SessionState
from repro.fiveg.nf import Upf
from repro.fiveg.procedures import build_state_bundle
from repro.fiveg.qos import QosShaper


def main() -> None:
    print("== Home-controlled billing & QoS ==")
    home = SpaceCoreHome()
    creds = home.enroll_satellite("sat-9")
    satellite = SpaceCoreSatellite("sat-9", creds)

    ue = home.provision_subscriber(1, quota_mb=15_000,
                                   max_bitrate_down_kbps=100_000)
    session = home.register(ue, (1, 1), (1, 1))
    print(f"subscriber {ue.supi}")
    print(f"  quota 15,000 MB, line rate 100 Mbps")
    print(f"  replica v{ue.replica.version} delegated to the device")

    # Localized establishment; the satellite decrypts and installs.
    served = satellite.establish_session_locally(ue, 0.0,
                                                 home.verify_key)
    shaper = QosShaper(served.state.qos)
    rate_before = shaper.achievable_throughput_kbps("down", 2.0)
    print(f"\n[before] satellite enforces "
          f"{served.state.qos.max_bitrate_down_kbps} kbps; achievable "
          f"~{rate_before:.0f} kbps")

    # The subscriber burns through the quota (16 GB of downlink).
    bytes_down = 16_000 * 1_000_000
    print(f"\n[usage] satellite reports {bytes_down / 1e9:.0f} GB "
          "downlink to the home")
    bundle = build_state_bundle(session,
                                home.core.amf.context(ue.supi), (1, 1))
    updated = home.apply_usage_report(ue, bundle, 0, bytes_down)
    print(f"[home] PCF re-evaluates: used "
          f"{updated.billing.used_mb:.0f}/{updated.billing.quota_mb} MB "
          f"-> throttled={updated.billing.throttled}")
    print(f"[home] new QoS {updated.qos.max_bitrate_down_kbps} kbps, "
          f"replica re-signed and re-encrypted as v{updated.version}")

    # Next establishment installs the throttled state.
    satellite.release_session(str(ue.supi))
    served = satellite.establish_session_locally(ue, 10.0,
                                                 home.verify_key)
    shaper = QosShaper(served.state.qos)
    rate_after = shaper.achievable_throughput_kbps("down", 2.0)
    print(f"\n[after] satellite now enforces "
          f"{served.state.qos.max_bitrate_down_kbps} kbps; achievable "
          f"~{rate_after:.0f} kbps "
          f"({rate_before / max(rate_after, 1):.0f}x slower)")

    # And the UE cannot cheat: replaying the old fat replica fails.
    print("\n[cheat attempt] UE replays its pre-throttle replica...")
    old_state = dataclasses.replace(bundle)  # v1 bundle, 100 Mbps QoS
    try:
        ue.store_replica(dataclasses.replace(
            ue.replica, version=old_state.version))
        print("  ERROR: downgrade accepted!")
    except ValueError as exc:
        print(f"  refused by the device proxy: {exc}")
    print("\nOperator control survived statelessness. Done.")


if __name__ == "__main__":
    main()
