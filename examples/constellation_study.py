#!/usr/bin/env python3
"""Constellation design study across the Table 1 line-up.

A downstream-operator's question: *which shell should carry my core?*
This example sweeps the four Table 1 constellations and reports, for
each, the geometry and workload quantities that drive the paper's
results:

* orbital speed / period / coverage dwell (the mobility pressure);
* geospatial cell statistics (Table 3);
* mean ISL hops to a gateway (the space-terrestrial asymmetry);
* Beijing->New York relay delay under ideal and J4 orbits (Fig. 18b);
* SpaceCore's signaling reduction over each baseline (Table 4).

Run:  python examples/constellation_study.py
"""

from repro.experiments import (
    compare_ideal_vs_j4,
    mean_hops_to_ground,
    reduction_factors,
)
from repro.geo import GeospatialCellGrid
from repro.orbits import (
    TABLE1,
    default_ground_stations,
    mean_dwell_time_s,
)


def main() -> None:
    print("== Constellation design study (Table 1 shells) ==")
    for name, factory in TABLE1.items():
        constellation = factory()
        # Smaller shells fly fewer gateways in practice.
        station_count = max(6, constellation.total_satellites // 60)
        stations = default_ground_stations(min(station_count, 26))

        print(f"\n--- {name}: {constellation.total_satellites} sats, "
              f"{constellation.altitude_km:.0f} km, "
              f"{constellation.inclination_deg} deg ---")
        print(f"  orbital speed {constellation.speed_km_s:.2f} km/s, "
              f"period {constellation.period_s / 60:.1f} min, "
              f"dwell per pass {mean_dwell_time_s(constellation):.0f} s")

        grid = GeospatialCellGrid(constellation)
        stats = grid.cell_size_statistics(samples=12000)
        print(f"  geospatial cells: {stats.num_cells} populated, "
              f"avg {stats.avg_km2 / 1e3:.0f}k km2 "
              f"(min {stats.min_km2 / 1e3:.0f}k, "
              f"max {stats.max_km2 / 1e3:.0f}k)")

        hops = mean_hops_to_ground(constellation, stations)
        print(f"  mean ISL hops to a gateway: {hops:.1f} "
              f"({len(stations)} gateways)")

        relay = compare_ideal_vs_j4(constellation, samples=8)
        print(f"  Beijing->NY relay: ideal "
              f"{relay.mean_delay_ideal_ms:.1f} ms, J4 "
              f"{relay.mean_delay_j4_ms:.1f} ms, delivery "
              f"{relay.delivery_rate_j4 * 100:.0f}%")

        factors = reduction_factors(constellation, stations=stations)
        pretty = ", ".join(f"{k} {v:.1f}x"
                           for k, v in sorted(factors.items()))
        print(f"  SpaceCore signaling reduction: {pretty}")

    print("\nReading: higher shells (OneWeb) trade longer dwell "
          "(less mobility signaling) for longer RTTs; dense shells "
          "(Starlink) minimize relay delay but maximize the mobility "
          "storm a stateful core would suffer -- which is exactly "
          "where the stateless design pays off most.")


if __name__ == "__main__":
    main()
