#!/usr/bin/env python3
"""Emergency communications under failures and attacks.

S2.2(4) + S3.3: when terrestrial infrastructure is destroyed and the
space segment itself is degraded (radiation failures, jammed links,
downed gateways, hijacked satellites), can users still communicate?

This example runs the drill on the **declarative scenario layer**
(:mod:`repro.scenarios`): an ad-hoc emergency ScenarioSpec composes
decay churn, a regional jammer, and a gateway blackout over one city,
executes seeded trials on the sharded runtime, and holds the outcome
to an SLO budget -- the same harness the committed catalog
(``repro scenario list``) gates CI with.  The hijack blast-radius
drill then shows what a compromised satellite leaks and how epoch
revocation stops the bleeding.

Run:  python examples/emergency_resilience.py
"""

from repro.core import FallbackRequired, SpaceCoreSystem
from repro.orbits import starlink
from repro.scenarios import (
    ChaosSpec,
    PopulationSpec,
    ScenarioSpec,
    SLOBudget,
    run_scenario,
)

#: The disaster zone: one metropolitan cluster whose terrestrial
#: infrastructure just went dark.
DISASTER_SITES = ((39.9, 116.4), (40.2, 116.9), (39.5, 115.9))


def emergency_spec() -> ScenarioSpec:
    """A compact emergency: churn + jamming + gateway blackout."""
    return ScenarioSpec(
        name="emergency-drill",
        title="Disaster-zone communications drill",
        description=(
            "Decay churn kills serving satellites while a jammer opens "
            "over the disaster zone and the nearest gateways go dark; "
            "sessions must survive on local, stateless recovery."),
        horizon_s=900.0,
        population=PopulationSpec(n_ues=9, sites=DISASTER_SITES,
                                  jitter_deg=1.0),
        chaos=ChaosSpec(decay_acceleration=5.0e5,
                        repair_delay_s=600.0,
                        jam_start_s=120.0, jam_stop_s=600.0,
                        jam_radius_km=900.0,
                        gs_outage_start_s=120.0,
                        gs_outage_stop_s=750.0,
                        gs_outage_fraction=0.4),
        slo=SLOBudget(availability_floor=0.85,
                      p99_latency_ceiling_s=30.0,
                      retry_budget_attempts=2.5,
                      max_lost_sessions=2,
                      survival_margin_floor=0.0),
        n_trials=2,
    )


def main() -> None:
    print("== Emergency resilience drill ==\n")

    # 1. The scenario-layer stress run: declarative spec -> seeded
    #    trials -> SLO verdict.
    spec = emergency_spec()
    print(f"[scenario] {spec.title}")
    print(f"  {spec.population.n_ues} UEs in the disaster zone, "
          f"{spec.horizon_s:.0f}s horizon, {spec.n_trials} seeded trials")
    result = run_scenario(spec)
    summary = result.summary()
    report = result.slo_report()
    print(f"  faults injected: {summary['faults_injected']}, "
          f"recoveries: {summary['spacecore_recoveries']}")
    print(f"  session survival: SpaceCore "
          f"{summary['spacecore_mean_survival']:.3f} vs stateful "
          f"baseline {summary['baseline_mean_survival']:.3f} "
          f"(margin +{summary['survival_margin']:.3f})")
    print(f"\n[slo] verdict: {report.verdict}")
    for check in report.checks:
        op = ">=" if check.kind == "floor" else "<="
        print(f"  [{check.verdict:8s}] {check.name:24s} "
              f"{check.observed:.6g} {op} {check.threshold:.6g}")

    # 2. Hijack blast radius + revocation (Appendix B).
    system = SpaceCoreSystem(starlink())
    ue = system.provision_ue(*DISASTER_SITES[0])
    system.register(ue)
    system.establish_session(ue, t=0.0)
    sat_idx = system.serving_satellite_of(ue, 0.0)
    hijacked = system.satellite(sat_idx)
    exposed = hijacked.exposed_states()
    print(f"\n[hijack] satellite {sat_idx} compromised; states exposed: "
          f"{len(exposed)} ephemeral session(s) -- no permanent keys, "
          "no other users' vectors")
    system.home.revoke_satellite(f"sat-{sat_idx}")
    fresh = system.provision_ue(38.5, 115.0)
    system.register(fresh)
    try:
        hijacked.establish_session_locally(fresh, 0.0,
                                           system.home.verify_key)
        print("  ERROR: hijacked satellite still trusted!")
    except FallbackRequired:
        print(f"  [revoked] epoch rotated to {system.home.epoch}; "
              "hijacked satellite can no longer open any new replica")

    print("\nDrill complete: the SLO gate held under churn, jamming "
          "and gateway blackout, and the hijack leaked only ephemeral "
          "state.")


if __name__ == "__main__":
    main()
