#!/usr/bin/env python3
"""Emergency communications under failures and attacks.

S2.2(4) + S3.3: when terrestrial infrastructure is destroyed and the
space segment itself is degraded (radiation failures, jammed links,
hijacked satellites), can users still communicate?

This example stress-tests SpaceCore over Starlink:

1. kill a batch of satellites (the ~1-in-40 Starlink failure rate,
   Fig. 13a) and some ISLs (laser misalignment), then show Algorithm 1
   still delivers traffic by deflecting around the holes;
2. quantify procedure survival under bursty link loss
   (Gilbert-Elliott, Fig. 13b): 4-message local flows vs 18-message
   home-routed flows;
3. hijack a serving satellite and show the blast radius: what leaks,
   and how epoch revocation stops the bleeding.

Run:  python examples/emergency_resilience.py
"""

import math
import random

from repro.core import FallbackRequired, SpaceCoreSystem
from repro.faults import (
    GilbertElliottChannel,
    procedure_success_probability,
)
from repro.fiveg.messages import ProcedureKind
from repro.baselines import fiveg_ntn, spacecore
from repro.orbits import starlink

BEIJING = (math.radians(39.9), math.radians(116.4))


def main() -> None:
    rng = random.Random(2022)
    system = SpaceCoreSystem(starlink())
    total = system.constellation.total_satellites

    print("== Emergency resilience drill ==\n")

    # A working end-to-end path before the disaster.
    ue = system.provision_ue(39.9, 116.4)
    system.register(ue)
    system.establish_session(ue, t=0.0)
    survivor = system.provision_ue(40.7, -74.0)
    system.register(survivor)
    src_sat = system.serving_satellite_of(ue, 0.0)
    before = system.deliver_downlink(src_sat, survivor, t=0.0)
    print(f"[baseline] Beijing->NY: {before.route.hops} hops, "
          f"{before.route.delay_s * 1000:.1f} ms")

    # 1. Radiation failures + ISL misalignment.
    failed = rng.sample(range(total), total // 40)
    for sat in failed:
        system.topology.fail_satellite(sat)
    # Drop some random ISLs too (a few dozen misaligned lasers).
    isl_failures = 0
    for _ in range(50):
        sat = rng.randrange(total)
        if not system.topology.is_up(sat):
            continue
        neighbors = system.topology.isl_neighbors(sat)
        if neighbors:
            system.topology.fail_isl(sat, rng.choice(neighbors))
            isl_failures += 1
    print(f"\n[disaster] failed {len(failed)} satellites (1 in 40) and "
          f"{isl_failures} laser ISLs")

    survivor.connected = False  # force a fresh paging + local setup
    src_sat = system.serving_satellite_of(ue, 0.0)
    after = system.deliver_downlink(src_sat, survivor, t=0.0)
    print(f"[rerouted] Beijing->NY: delivered={after.route.delivered}, "
          f"{after.route.hops} hops, "
          f"{after.route.delay_s * 1000:.1f} ms "
          f"(+{(after.route.delay_s - before.route.delay_s) * 1000:.1f} "
          "ms detour)")

    # 2. Procedure survival under bursty link loss.
    channel = GilbertElliottChannel(seed=7)
    fer = sum(channel.series(2000)) / 2000
    sc_msgs = len(spacecore().flow(ProcedureKind.SESSION_ESTABLISHMENT))
    ntn = fiveg_ntn()
    ntn_msgs = len(ntn.flow(ProcedureKind.SESSION_ESTABLISHMENT))
    # Home-routed messages traverse many wireless hops; approximate
    # per-message loss as 1-(1-fer)^hops for the crossing fraction.
    hops = 6
    crossing = ntn.crossing_messages(
        ntn.flow(ProcedureKind.SESSION_ESTABLISHMENT))
    ntn_loss = 1.0 - (1.0 - fer) ** hops
    p_spacecore = procedure_success_probability(sc_msgs, fer)
    p_ntn = (procedure_success_probability(ntn_msgs - crossing, fer)
             * procedure_success_probability(crossing, ntn_loss))
    print(f"\n[link loss] mean frame error rate {fer * 100:.1f}% "
          "(Gilbert-Elliott bursts, Fig. 13b)")
    print(f"  SpaceCore 4-msg local establishment survives: "
          f"{p_spacecore * 100:5.1f}%")
    print(f"  5G NTN   {ntn_msgs}-msg home-routed establishment "
          f"survives: {p_ntn * 100:5.1f}%")

    # 3. Hijack blast radius + revocation.
    sat_idx = system.serving_satellite_of(ue, 0.0)
    hijacked = system.satellite(sat_idx)
    exposed = hijacked.exposed_states()
    print(f"\n[hijack] satellite {sat_idx} compromised; states exposed: "
          f"{len(exposed)} ephemeral session(s) -- no permanent keys, "
          "no other users' vectors")
    system.home.revoke_satellite(f"sat-{sat_idx}")
    fresh = system.provision_ue(38.5, 115.0)
    system.register(fresh)
    try:
        hijacked.establish_session_locally(fresh, 0.0,
                                           system.home.verify_key)
        print("  ERROR: hijacked satellite still trusted!")
    except FallbackRequired:
        print(f"  [revoked] epoch rotated to {system.home.epoch}; "
              "hijacked satellite can no longer open any new replica")
    print("\nDrill complete: service survived the constellation "
          "degradation, and the hijack leaked only ephemeral state.")


if __name__ == "__main__":
    main()
