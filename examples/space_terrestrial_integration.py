#!/usr/bin/env python3
"""Seamless space-terrestrial integration (S4.5).

A commuter's phone drifts between a city with terrestrial 5G coverage
and the countryside where only satellites reach.  SpaceCore's home
core anchors both domains, so:

* idle reselection between gNB and satellite costs zero signaling;
* connected handovers run the standard home-controlled procedure;
* identity and the geospatial address survive every switch.

Run:  python examples/space_terrestrial_integration.py
"""

from repro.core import (
    AccessDomain,
    IntegratedAccessManager,
    SpaceCoreSystem,
    TerrestrialBaseStation,
)
from repro.orbits import starlink

CITY = (39.90, 116.40)         # downtown, gNB coverage
SUBURB = (40.05, 116.60)       # edge of the city
COUNTRYSIDE = (41.20, 114.50)  # satellite-only


def show(manager, ue, label):
    domain = manager.current_domain(ue)
    print(f"  [{label:12s}] domain={domain.value:12s} "
          f"ip={ue.ip_address}")


def main() -> None:
    print("== Space-terrestrial integration ==")
    system = SpaceCoreSystem(starlink())
    gnbs = [TerrestrialBaseStation("downtown-gnb", *CITY,
                                   radius_km=12.0),
            TerrestrialBaseStation("suburb-gnb", *SUBURB,
                                   radius_km=6.0)]
    manager = IntegratedAccessManager(system, gnbs)

    ue = system.provision_ue(*CITY)
    system.register(ue)
    print(f"subscriber {ue.supi} registered once, usable in both "
          "domains\n")

    # Morning: idle at home downtown -- camps on the gNB for free.
    decision = manager.reselect_idle(ue)
    print(f"morning, downtown: {decision.reason}")
    show(manager, ue, "idle")
    print(f"  core signaling so far: {manager.bus.count()} messages")

    # Driving out: idle reselection to satellite, still free.
    ue.move_to(*map(_rad, COUNTRYSIDE))
    decision = manager.reselect_idle(ue)
    print(f"\ndriving out: {decision.reason}")
    show(manager, ue, "idle")
    print(f"  core signaling so far: {manager.bus.count()} messages "
          "(idle reselection is free)")

    # A call starts in the countryside: localized establishment.
    system.establish_session(ue)
    sat = system.serving_satellite_of(ue)
    print(f"\ncall starts: localized session on satellite {sat}")

    # Driving back into coverage mid-call: cross-domain handover.
    ue.move_to(*map(_rad, CITY))
    decision = manager.handover_connected(ue)
    print(f"driving home mid-call: handover -> {decision.target} "
          f"({decision.domain.value})")
    show(manager, ue, "connected")
    print(f"  handover signaling: {manager.bus.count('C3')} messages "
          "(standard Fig. 9c, home-coordinated)")
    print(f"  cross-domain handovers: {manager.cross_domain_handovers}")

    # Back out again, still on the call: satellite re-installs the
    # replica -- an equivalent but shorter migration path.
    ue.move_to(*map(_rad, COUNTRYSIDE))
    decision = manager.handover_connected(ue)
    print(f"\nleaving town mid-call: handover -> {decision.target}")
    sat = system.serving_satellite_of(ue)
    print(f"  satellite {sat} now serves the session "
          f"({system.satellite(sat).served_count} active)")
    print("\nSame SUPI, same address, both worlds. Done.")


def _rad(deg: float) -> float:
    import math
    return math.radians(deg)


if __name__ == "__main__":
    main()
