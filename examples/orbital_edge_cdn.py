#!/usr/bin/env python3
"""Orbital edge CDN: content served from satellites (S2.2(3)).

The paper motivates orbital core functions partly by orbital edge
computing -- CDNs and compute living on satellites.  This example
builds that application on the reproduction's substrate:

1. place 6 content replicas on satellites over population centres;
2. serve requests from Beijing, Lagos, Sao Paulo, and a mid-Pacific
   ship via Algorithm 1 to the nearest replica;
3. compare against the ground-CDN alternative (exit via a gateway);
4. kill a replica satellite and watch requests fail over with zero
   state migration -- the S4.3 recovery story applied to the edge.

Run:  python examples/orbital_edge_cdn.py
"""

import math

from repro.core.edge import OrbitalEdgeService
from repro.orbits import IdealPropagator, default_ground_stations, starlink
from repro.topology import GridTopology

CLIENTS = [
    ("beijing", 39.9, 116.4),
    ("lagos", 6.5, 3.4),
    ("sao-paulo", -23.5, -46.6),
    ("mid-pacific-ship", 5.0, -155.0),
]


def main() -> None:
    print("== Orbital edge CDN over SpaceCore ==")
    topology = GridTopology(IdealPropagator(starlink()),
                            default_ground_stations())
    service = OrbitalEdgeService(topology)
    replicas = service.place_over_population(0.0, replica_count=6)
    subs = topology.propagator.subpoints(0.0)
    print(f"placed {len(replicas)} replicas:")
    for sat in replicas:
        lat, lon = subs[sat]
        print(f"  satellite {sat:4d} over ({math.degrees(lat):+6.1f}, "
              f"{math.degrees(lon):+7.1f})")

    print("\nserving requests (one-way delay, edge vs ground CDN):")
    for name, lat_deg, lon_deg in CLIENTS:
        lat, lon = math.radians(lat_deg), math.radians(lon_deg)
        result = service.serve(lat, lon, 0.0)
        cdn = service.ground_cdn_latency_s(lat, lon, 0.0)
        if result.served:
            print(f"  {name:17s} edge {result.latency_s * 1000:6.1f} ms "
                  f"(replica sat {result.replica_sat}) | ground CDN "
                  f"{cdn * 1000:6.1f} ms")
        else:
            print(f"  {name:17s} no coverage")

    # Failure drill: kill the replica serving Beijing.
    beijing = (math.radians(39.9), math.radians(116.4))
    victim = service.serve(*beijing, 0.0).replica_sat
    topology.fail_satellite(victim)
    print(f"\n[failure] replica satellite {victim} dies "
          "(radiation, debris, hijack...)")
    rerouted = service.serve(*beijing, 0.0)
    print(f"[failover] beijing now served by satellite "
          f"{rerouted.replica_sat} at "
          f"{rerouted.latency_s * 1000:.1f} ms -- nothing was "
          "migrated, requests just flow to the next replica")
    print("\nEdge computing inherits the stateless core's resilience. "
          "Done.")


if __name__ == "__main__":
    main()
